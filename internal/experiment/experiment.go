// Package experiment regenerates the paper's evaluation: Tables 6 and 7
// (per-page average response times for five configurations of Java Pet Store
// and RUBiS, split by client locality) and Figures 7 and 8 (per-session
// average response times). Runs are deterministic given a seed: the same
// seed produces byte-identical tables.
package experiment

import (
	"fmt"
	"time"

	"wadeploy/internal/controller"
	"wadeploy/internal/core"
	"wadeploy/internal/faults"
	"wadeploy/internal/metrics"
	"wadeploy/internal/petstore"
	"wadeploy/internal/planner"
	"wadeploy/internal/rubis"
	"wadeploy/internal/sim"
	"wadeploy/internal/trace"
	"wadeploy/internal/workload"
)

// AppID selects the application under test.
type AppID string

// The two applications of the study.
const (
	PetStore AppID = "petstore"
	RUBiS    AppID = "rubis"
)

// Fault injects a WAN link failure window into a run.
type Fault struct {
	LinkA, LinkB string        // link endpoints (e.g. simnet.NodeEdge1, simnet.NodeRouter)
	At           time.Duration // virtual time the link goes down
	Duration     time.Duration // outage length
}

// RunOptions controls one experiment run.
type RunOptions struct {
	Seed     int64
	Warmup   time.Duration
	Duration time.Duration

	// Faults are link outages injected during the run (failure testing).
	Faults []Fault

	// Schedule, when non-nil, arms a scripted fault schedule on the run's
	// network (link flaps, partitions, latency/loss degradation, node
	// crashes) before the workload starts. Replay is deterministic: the
	// fault RNG derives from Seed on a separate stream.
	Schedule *faults.Schedule

	// Resilience, when non-nil, enables the WAN-degradation machinery
	// (RMI retries/breakers, JMS redelivery, serve-stale replicas) on the
	// deployment under test. Nil keeps strict semantics and byte-identical
	// output.
	Resilience *core.ResilienceOptions

	// Replication, when non-nil, arms the delta-replication machinery
	// (deltas-by-default, batched/coalesced pushes, bounded-staleness
	// leases, the epoch-indexed event log) on the deployment under test.
	// Nil keeps the paper's propagation path and byte-identical output.
	Replication *core.ReplicationOptions

	// Observer, when non-nil, sees every completed request (warm-up and
	// failures included) — the hook behind availability scoring.
	Observer workload.Observer

	// Parallelism bounds how many independent runs a table or sweep may
	// execute concurrently: 0 (the default) means one worker per CPU
	// (GOMAXPROCS), 1 forces the sequential path, and values above the
	// number of runs are clamped. Every run owns its environment, seed and
	// database, so any setting produces byte-identical tables.
	Parallelism int

	// MetricsTick, when positive, samples every counter and gauge into its
	// time series on this virtual-time interval. Sampling is armed as a raw
	// timer callback (no process, no RNG draw), so enabling it does not
	// perturb the workload schedule.
	MetricsTick time.Duration

	// Trace, when non-nil, installs a causal tracer on the run's environment
	// before the deployment is built: every substrate records spans for the
	// sampled page requests and Result.Trace carries the blame aggregates
	// plus the flight recorder's surviving span trees. Tracing draws no
	// randomness and adds no delays, so enabling it leaves every table and
	// figure byte-identical.
	Trace *trace.Options

	// Adaptive, when non-nil, deploys the app in adaptive mode (starting at
	// RemoteFacade with the target configuration's descriptor wired
	// deferred) and starts the online re-placement controller with these
	// options; cfg becomes the controller's extension target. PetStore
	// only. Result.Adapt carries the adaptation report.
	Adaptive *controller.Options
}

// DefaultRunOptions mirrors the paper's methodology (each test ran for about
// an hour preceded by several minutes of warm-up); the discrete-event
// engine makes the full hour cheap.
func DefaultRunOptions() RunOptions {
	return RunOptions{Seed: 1, Warmup: 5 * time.Minute, Duration: time.Hour}
}

// QuickRunOptions is a shortened run for tests and smoke checks.
func QuickRunOptions() RunOptions {
	return RunOptions{Seed: 1, Warmup: 30 * time.Second, Duration: 4 * time.Minute}
}

// PageCell is one table cell pair: local and remote mean response times for
// a page under a usage pattern.
type PageCell struct {
	Pattern string
	Page    string
	Local   time.Duration
	Remote  time.Duration

	// 95th-percentile response times, for tail-latency reporting.
	LocalP95  time.Duration
	RemoteP95 time.Duration
}

// Result is one configuration's measured row of Table 6/7 plus diagnostics.
type Result struct {
	App    AppID
	Config core.ConfigID
	Cells  []PageCell

	// Session means by (pattern, locality): the Figure 7/8 bars.
	SessionMeans map[string]map[bool]time.Duration

	Samples int
	Errors  int

	// Diagnostics.
	RemoteCalls  int64 // wide-area + local RMI invocations classified remote
	MainCPUUtil  float64
	EdgeCPUUtil  float64
	JMSPublished int64
	JMSDelivered int64

	// Metrics is the run's full registry snapshot, taken after the workload
	// finishes (deterministic: same seed, same snapshot).
	Metrics *metrics.Snapshot

	// Trace carries the causal-tracing outputs when RunOptions.Trace was set.
	Trace *TraceReport

	// Adapt is the online re-placement controller's report when
	// RunOptions.Adaptive was set.
	Adapt *controller.Report
}

// TraceReport is one run's tracing harvest: the blame aggregates over every
// sampled page view and the flight recorder's surviving span trees.
type TraceReport struct {
	Blame   *trace.Aggregator
	Traces  []*trace.Trace
	Sampled int64 // traces recorded (post-sampling)
	Dropped int64 // flight-recorder evictions
}

// Profile renders the report's aggregates in the JSON export shape.
func (tr *TraceReport) Profile() *trace.Profile { return tr.Blame.Profile() }

// Cell returns the cell for (pattern, page), or nil.
func (r *Result) Cell(pattern, page string) *PageCell {
	for i := range r.Cells {
		if r.Cells[i].Pattern == pattern && r.Cells[i].Page == page {
			return &r.Cells[i]
		}
	}
	return nil
}

// Mean returns the (local or remote) mean for (pattern, page); 0 if absent.
func (r *Result) Mean(pattern, page string, local bool) time.Duration {
	c := r.Cell(pattern, page)
	if c == nil {
		return 0
	}
	if local {
		return c.Local
	}
	return c.Remote
}

// PetStoreColumns is the paper's Table 6 column order.
var PetStoreColumns = []struct {
	Pattern string
	Page    string
}{
	{petstore.PatternBrowser, petstore.PageMain},
	{petstore.PatternBrowser, petstore.PageCategory},
	{petstore.PatternBrowser, petstore.PageProduct},
	{petstore.PatternBrowser, petstore.PageItem},
	{petstore.PatternBrowser, petstore.PageSearch},
	{petstore.PatternBuyer, petstore.PageMain},
	{petstore.PatternBuyer, petstore.PageSignin},
	{petstore.PatternBuyer, petstore.PageVerifySignin},
	{petstore.PatternBuyer, petstore.PageCart},
	{petstore.PatternBuyer, petstore.PageCheckout},
	{petstore.PatternBuyer, petstore.PagePlaceOrder},
	{petstore.PatternBuyer, petstore.PageBilling},
	{petstore.PatternBuyer, petstore.PageCommit},
	{petstore.PatternBuyer, petstore.PageSignout},
}

// RUBiSColumns is the paper's Table 7 column order.
var RUBiSColumns = []struct {
	Pattern string
	Page    string
}{
	{rubis.PatternBrowser, rubis.PageMain},
	{rubis.PatternBrowser, rubis.PageBrowse},
	{rubis.PatternBrowser, rubis.PageAllCategories},
	{rubis.PatternBrowser, rubis.PageAllRegions},
	{rubis.PatternBrowser, rubis.PageRegion},
	{rubis.PatternBrowser, rubis.PageCategory},
	{rubis.PatternBrowser, rubis.PageCatRegion},
	{rubis.PatternBrowser, rubis.PageItem},
	{rubis.PatternBrowser, rubis.PageBids},
	{rubis.PatternBrowser, rubis.PageUserInfo},
	{rubis.PatternBidder, rubis.PageMain},
	{rubis.PatternBidder, rubis.PagePutBidAuth},
	{rubis.PatternBidder, rubis.PagePutBidForm},
	{rubis.PatternBidder, rubis.PageStoreBid},
	{rubis.PatternBidder, rubis.PagePutCommentAuth},
	{rubis.PatternBidder, rubis.PagePutCommentForm},
	{rubis.PatternBidder, rubis.PageStoreComment},
}

// Run executes one (application, configuration) experiment.
func Run(app AppID, cfg core.ConfigID, opts RunOptions) (*Result, error) {
	env := sim.NewEnv(opts.Seed)
	if opts.Trace != nil {
		trace.New(env, *opts.Trace).Install(env)
	}
	switch app {
	case PetStore:
		copts := core.DefaultOptions()
		copts.Resilience = opts.Resilience
		copts.Replication = opts.Replication
		d, err := core.NewPaperDeployment(env, copts)
		if err != nil {
			return nil, err
		}
		var a *petstore.App
		var ctrl *controller.Controller
		if opts.Adaptive != nil {
			a, err = petstore.DeployAdaptive(d, cfg)
			if err != nil {
				return nil, err
			}
			ctrl, err = controller.Start(controller.Config{
				Deployment: d,
				Wiring:     a.Wiring(),
				Model:      petstore.PlannerModel(),
				Current:    planner.Candidate{ReplicateWeb: true},
				Seed:       opts.Seed,
				OnExtend:   a.ActivateEdgeCatalog,
				Apply:      a.SetEffectiveConfig,
				Options:    *opts.Adaptive,
			})
			if err != nil {
				return nil, err
			}
		} else if a, err = petstore.Deploy(d, cfg); err != nil {
			return nil, err
		}
		res, err := collect(app, cfg, d, opts, petstore.PaperWorkload(a), petStorePatterns, columnsFor(app))
		if err != nil {
			return nil, err
		}
		if ctrl != nil {
			res.Adapt = ctrl.Report()
		}
		return res, nil
	case RUBiS:
		if opts.Adaptive != nil {
			return nil, fmt.Errorf("experiment: adaptive mode is PetStore-only")
		}
		copts := rubis.DeployOptions()
		copts.Resilience = opts.Resilience
		copts.Replication = opts.Replication
		d, err := core.NewPaperDeployment(env, copts)
		if err != nil {
			return nil, err
		}
		a, err := rubis.Deploy(d, cfg)
		if err != nil {
			return nil, err
		}
		return collect(app, cfg, d, opts, rubis.PaperWorkload(a), rubisPatterns, columnsFor(app))
	default:
		return nil, fmt.Errorf("experiment: unknown app %q", app)
	}
}

var (
	petStorePatterns = []string{petstore.PatternBrowser, petstore.PatternBuyer}
	rubisPatterns    = []string{rubis.PatternBrowser, rubis.PatternBidder}
)

func columnsFor(app AppID) []struct{ Pattern, Page string } {
	var cols []struct{ Pattern, Page string }
	if app == PetStore {
		for _, c := range PetStoreColumns {
			cols = append(cols, struct{ Pattern, Page string }{c.Pattern, c.Page})
		}
		return cols
	}
	for _, c := range RUBiSColumns {
		cols = append(cols, struct{ Pattern, Page string }{c.Pattern, c.Page})
	}
	return cols
}

func collect(app AppID, cfg core.ConfigID, d *core.Deployment, opts RunOptions,
	groups []workload.Group, patterns []string, columns []struct{ Pattern, Page string }) (*Result, error) {
	for _, f := range opts.Faults {
		f := f
		// Validate the link exists before arming the outage.
		if err := d.Net.SetLinkState(f.LinkA, f.LinkB, true); err != nil {
			return nil, fmt.Errorf("experiment: fault: %w", err)
		}
		d.Env.At(f.At, func() { _ = d.Net.SetLinkState(f.LinkA, f.LinkB, false) })
		d.Env.At(f.At+f.Duration, func() { _ = d.Net.SetLinkState(f.LinkA, f.LinkB, true) })
	}
	if opts.Schedule != nil {
		if err := faults.Arm(d.Net, opts.Schedule, opts.Seed); err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
	}
	reg := d.Env.Metrics()
	if opts.MetricsTick > 0 {
		var tick func()
		tick = func() {
			reg.Sample()
			d.Env.After(opts.MetricsTick, tick)
		}
		d.Env.After(opts.MetricsTick, tick)
	}
	stats, err := workload.Run(workload.Config{
		Env:      d.Env,
		Groups:   groups,
		Warmup:   opts.Warmup,
		Duration: opts.Duration,
		Observer: opts.Observer,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: %s/%s: %w", app, cfg, err)
	}
	res := &Result{
		App:          app,
		Config:       cfg,
		SessionMeans: make(map[string]map[bool]time.Duration, len(patterns)),
		Samples:      stats.TotalSamples(),
		Errors:       stats.Errors(),
		RemoteCalls:  d.RMI.Stats().RemoteCalls,
		JMSPublished: d.JMS.Published(),
		JMSDelivered: d.JMS.Delivered(),
	}
	for _, c := range columns {
		cell := PageCell{
			Pattern: c.Pattern,
			Page:    c.Page,
			Local:   stats.Mean(workload.SeriesKey{Pattern: c.Pattern, Page: c.Page, Local: true}),
			Remote:  stats.Mean(workload.SeriesKey{Pattern: c.Pattern, Page: c.Page, Local: false}),
		}
		if s := stats.Series(workload.SeriesKey{Pattern: c.Pattern, Page: c.Page, Local: true}); s != nil {
			cell.LocalP95 = s.Percentile(95)
		}
		if s := stats.Series(workload.SeriesKey{Pattern: c.Pattern, Page: c.Page, Local: false}); s != nil {
			cell.RemoteP95 = s.Percentile(95)
		}
		res.Cells = append(res.Cells, cell)
	}
	for _, pat := range patterns {
		res.SessionMeans[pat] = map[bool]time.Duration{
			true:  stats.SessionMean(pat, true),
			false: stats.SessionMean(pat, false),
		}
	}
	if tr := trace.FromEnv(d.Env); tr != nil {
		res.Trace = &TraceReport{
			Blame:   tr.Aggregator(),
			Traces:  tr.Recorder().Traces(),
			Sampled: int64(tr.Recorder().Len()) + int64(tr.Recorder().Evicted()),
			Dropped: int64(tr.Recorder().Evicted()),
		}
	}
	mainNode := d.Net.Node(d.Main.Name())
	res.MainCPUUtil = mainNode.CPU.Utilization()
	if len(d.Edges) > 0 {
		edgeNode := d.Net.Node(d.Edges[0].Name())
		res.EdgeCPUUtil = edgeNode.CPU.Utilization()
	}
	res.Metrics = reg.Snapshot()
	return res, nil
}

// RunTable runs all five configurations for an application: the full
// Table 6 (PetStore) or Table 7 (RUBiS).
func RunTable(app AppID, opts RunOptions) ([]*Result, error) {
	return runConfigs(app, opts, core.Configs)
}

// RunTableWithExtensions appends the extension configurations (currently
// DB replication, Pet Store only) to the paper's five rows.
func RunTableWithExtensions(app AppID, opts RunOptions) ([]*Result, error) {
	configs := append([]core.ConfigID(nil), core.Configs...)
	if app == PetStore {
		configs = append(configs, core.ExtensionConfigs...)
	}
	return runConfigs(app, opts, configs)
}

func runConfigs(app AppID, opts RunOptions, configs []core.ConfigID) ([]*Result, error) {
	out := make([]*Result, len(configs))
	err := forEachParallel(opts.Parallelism, len(configs), func(i int) error {
		r, err := Run(app, configs[i], opts)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FigureBar is one bar of Figure 7/8.
type FigureBar struct {
	Config  core.ConfigID
	Pattern string
	Local   bool
	Mean    time.Duration
}

// Figure derives the Figure 7/8 bars from a table run.
func Figure(results []*Result) []FigureBar {
	var bars []FigureBar
	if len(results) == 0 {
		return bars
	}
	patterns := petStorePatterns
	if results[0].App == RUBiS {
		patterns = rubisPatterns
	}
	for _, local := range []bool{true, false} {
		for _, pat := range patterns {
			for _, r := range results {
				bars = append(bars, FigureBar{
					Config:  r.Config,
					Pattern: pat,
					Local:   local,
					Mean:    r.SessionMeans[pat][local],
				})
			}
		}
	}
	return bars
}
