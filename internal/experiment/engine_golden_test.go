package experiment

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"wadeploy/internal/core"
	"wadeploy/internal/faults"
)

// The engine-v2 determinism gate: Tables 6-7 and Figures 7-8 rendered from
// the quick-run options are pinned byte-identical to goldens captured with
// the pre-wheel, pre-task engine (single binary min-heap, goroutine-only
// processes). Any event-ordering change in the sim core — a timer-wheel slot
// firing out of (at, seq) order, a task scheduled ahead of a process
// resumption, a shard barrier leaking across rounds — shows up here as a
// table diff. The faulted variant additionally pins the fault-RNG stream
// under faults.Canonical.
//
// Regenerate (only when an output change is intended and explained):
//
//	go test ./internal/experiment -run TestEngineGolden -update

// engineGoldenOptions is the gate's fixed methodology: quick-run length,
// seed 1, warm-up discard — long enough that all five configurations
// produce full tables, short enough for CI.
func engineGoldenOptions(parallelism int) RunOptions {
	return RunOptions{
		Seed:        1,
		Warmup:      30 * time.Second,
		Duration:    4 * time.Minute,
		Parallelism: parallelism,
	}
}

func renderAll(results []*Result) string {
	return FormatTable(results) + FormatTableP95(results) +
		FormatFigure(results) + FormatDiagnostics(results)
}

// TestEngineGoldenTables pins Table 6/7 + Figure 7/8 output at -parallel 1
// and 8 against the pre-engine-swap goldens.
func TestEngineGoldenTables(t *testing.T) {
	for _, app := range []AppID{PetStore, RUBiS} {
		name := "engine_" + string(app)
		for _, par := range []int{1, 8} {
			results, err := RunTable(app, engineGoldenOptions(par))
			if err != nil {
				t.Fatal(err)
			}
			got := renderAll(results)
			if par != 1 {
				// The golden is written once from the sequential run; the
				// parallel run must match it byte for byte.
				path := filepath.Join("testdata", name+".golden")
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden %s: %v", path, err)
				}
				if got != string(want) {
					t.Errorf("%s: -parallel %d differs from golden", name, par)
				}
				continue
			}
			checkGolden(t, name, got)
		}
	}
}

// TestEngineGoldenFaulted pins the faulted variant: the canonical WAN-outage
// schedule plus default resilience, Pet Store, -parallel 1 and 8.
func TestEngineGoldenFaulted(t *testing.T) {
	run := func(par int) string {
		opts := engineGoldenOptions(par)
		opts.Schedule = faults.Canonical(opts.Warmup, opts.Duration)
		opts.Resilience = core.DefaultResilience()
		results, err := RunTable(PetStore, opts)
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(results)
	}
	seq := run(1)
	checkGolden(t, "engine_petstore_faulted", seq)
	if par := run(8); par != seq {
		t.Error("faulted table at -parallel 8 differs from sequential run")
	}
}
