package experiment

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"wadeploy/internal/core"
	"wadeploy/internal/metrics"
)

// counterOf sums a counter family in a snapshot: the bare name plus any
// labeled children ("name{label=...}").
func counterOf(snap *metrics.Snapshot, name string) int64 {
	var total int64
	for _, c := range snap.Counters {
		if c.Name == name || strings.HasPrefix(c.Name, name+"{") {
			total += c.Value
		}
	}
	return total
}

// availQuickOptions is the availability-test run: short enough for CI, with
// enough pre-outage traffic (5 virtual minutes) that the edge caches have
// seen the whole key space before the WAN link drops. The canonical outage
// window is [Warmup+Duration/4, Warmup+Duration/2] = [5m, 7m].
func availQuickOptions() RunOptions {
	opts := QuickRunOptions()
	opts.Warmup = 3 * time.Minute
	opts.Duration = 8 * time.Minute
	return opts
}

func availResults(t *testing.T) []*AvailabilityResult {
	t.Helper()
	results, err := RunAvailability(PetStore, availQuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(core.Configs) {
		t.Fatalf("got %d results, want %d", len(results), len(core.Configs))
	}
	return results
}

// TestAvailabilityInvariants pins the experiment's headline claim: under the
// canonical WAN outage, configurations that cache state on the edges keep
// serving browse pages to the partitioned edge's clients, while the
// centralized configuration loses essentially all of them. It also asserts
// that each resilience mechanism actually fired.
func TestAvailabilityInvariants(t *testing.T) {
	results := availResults(t)
	byConfig := make(map[core.ConfigID]*AvailabilityResult)
	for _, r := range results {
		byConfig[r.Config] = r
	}

	cent := byConfig[core.Centralized]
	if cent.BrowseOK+cent.BrowseFail == 0 {
		t.Fatal("centralized saw no browse traffic in the window")
	}
	if rate := cent.BrowseSuccessRate(); rate > 0.05 {
		t.Errorf("centralized browse success = %.1f%%, want ~0%% (clients cut off from main)", 100*rate)
	}
	for _, cfg := range []core.ConfigID{core.QueryCaching, core.AsyncUpdates} {
		r := byConfig[cfg]
		if r.BrowseOK+r.BrowseFail == 0 {
			t.Fatalf("%s saw no browse traffic in the window", cfg)
		}
		if rate := r.BrowseSuccessRate(); rate < 0.95 {
			t.Errorf("%s browse success = %.1f%%, want >= 95%% (edge caches carry the outage)", cfg, 100*rate)
		}
		// Commit-path pages must fail (no WAN path to the shared state) —
		// degradation is expected, not silent success.
		if r.WriteFail == 0 {
			t.Errorf("%s write failures = 0, want > 0 during the partition", cfg)
		}
	}

	// Every resilience family fired somewhere across the five runs.
	totals := make(map[string]int64)
	families := []string{
		"rmi_retries_total",
		"rmi_call_timeouts_total",
		"rmi_breaker_fastfail_total",
		"rmi_breaker_transitions_total",
		"container_stale_serves_total",
		"jms_redeliveries_total",
		"simnet_dropped_total",
		"faults_injected_total",
	}
	for _, r := range results {
		for _, name := range families {
			totals[name] += counterOf(r.Full.Metrics, name)
		}
	}
	for _, name := range families {
		if totals[name] == 0 {
			t.Errorf("metric family %s never fired across the availability runs", name)
		}
	}
}

// TestAvailabilityDeterministic pins byte-identical replay: the same seed
// yields the same availability table (and full metric snapshots) regardless
// of worker parallelism.
func TestAvailabilityDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(parallel int) []byte {
		opts := availQuickOptions()
		opts.Parallelism = parallel
		results, err := RunAvailability(PetStore, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Result.SessionMeans is not JSON-marshalable (map[bool]...), so
		// compare the availability rows plus the full metric snapshots.
		type row struct {
			Config  string
			Rest    *AvailabilityResult
			Metrics *metrics.Snapshot
		}
		rows := make([]row, len(results))
		for i, r := range results {
			full := r.Full
			r.Full = nil
			rows[i] = row{Config: r.Config.String(), Rest: r, Metrics: full.Metrics}
		}
		b, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq := run(1)
	par := run(8)
	if string(seq) != string(par) {
		t.Fatal("availability results differ between -parallel 1 and -parallel 8")
	}
	if string(seq) != string(run(1)) {
		t.Fatal("availability results differ between repeated same-seed runs")
	}
}

func TestFormatAvailability(t *testing.T) {
	results := availResults(t)
	out := FormatAvailability(results)
	for _, want := range []string{"Availability on", "browse%", "write%", "Centralized application", "Asynchronous updates"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}
