package experiment

import (
	"testing"
	"time"

	"wadeploy/internal/core"
	"wadeploy/internal/simnet"
)

// faultOpts injects a one-minute WAN outage on edge1 mid-measurement.
func faultOpts() RunOptions {
	return RunOptions{
		Seed:     1,
		Warmup:   20 * time.Second,
		Duration: 3 * time.Minute,
		Faults: []Fault{{
			LinkA:    simnet.NodeEdge1,
			LinkB:    simnet.NodeRouter,
			At:       80 * time.Second,
			Duration: time.Minute,
		}},
	}
}

// In the centralized configuration a WAN outage makes edge1's clients lose
// everything: they cannot even reach the service.
func TestFaultCentralizedLosesRemoteClients(t *testing.T) {
	r, err := Run(RUBiS, core.Centralized, faultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Errors == 0 {
		t.Fatal("no request errors despite a 1-minute WAN outage")
	}
	// Roughly one group's full minute of traffic fails (~10 req/s).
	if r.Errors < 300 {
		t.Fatalf("errors = %d, want most of the outage window's requests", r.Errors)
	}
}

// In the query-caching configuration the same outage only hurts writes: the
// availability benefit of edge deployment from the paper's introduction.
func TestFaultQueryCachingKeepsBrowsersServed(t *testing.T) {
	centralized, err := Run(RUBiS, core.Centralized, faultOpts())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Run(RUBiS, core.QueryCaching, faultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if cached.Errors == 0 {
		t.Fatal("writes should fail during the outage")
	}
	// Browsers (80% of traffic) keep being served from edge caches, so the
	// cached configuration loses far fewer requests.
	if float64(cached.Errors) > 0.4*float64(centralized.Errors) {
		t.Fatalf("cached errors = %d vs centralized %d; edge caches should absorb most of the outage",
			cached.Errors, centralized.Errors)
	}
	// The measurement still produced full tables.
	if cached.Samples < 1000 {
		t.Fatalf("samples = %d", cached.Samples)
	}
}

func TestFaultUnknownLinkRejected(t *testing.T) {
	opts := QuickRunOptions()
	opts.Faults = []Fault{{LinkA: "nowhere", LinkB: "else", At: time.Second, Duration: time.Second}}
	if _, err := Run(PetStore, core.Centralized, opts); err == nil {
		t.Fatal("fault on unknown link accepted")
	}
}

func TestResultsIncludeTailLatencies(t *testing.T) {
	ps, _ := tables(t)
	r := ps[0] // centralized
	for _, c := range r.Cells {
		if c.LocalP95 < c.Local/2 || c.RemoteP95 < c.Remote/2 {
			t.Fatalf("%s/%s: p95 (%v/%v) inconsistent with means (%v/%v)",
				c.Pattern, c.Page, c.LocalP95, c.RemoteP95, c.Local, c.Remote)
		}
		if c.LocalP95 == 0 || c.RemoteP95 == 0 {
			t.Fatalf("%s/%s: missing p95", c.Pattern, c.Page)
		}
	}
}
