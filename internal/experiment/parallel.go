package experiment

// Parallel run scheduler.
//
// The evaluation grid is embarrassingly parallel: every Run builds its own
// sim.Env, seeded RNG, network, containers and sqldb instance, so runs share
// no mutable state and can execute on separate OS threads. Each run stays
// internally deterministic (seeded virtual clock), and results are written
// into their input slot, so output is byte-identical to a sequential pass
// regardless of completion order — a property pinned by
// TestParallelRunTableDeterminism.

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// clampParallelism resolves a requested worker count against n jobs:
// non-positive values mean "one worker per CPU", and the pool is never wider
// than the number of jobs.
func clampParallelism(parallel, n int) int {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel < 1 {
		parallel = 1
	}
	return parallel
}

// forEachParallel runs job(0) … job(n-1) on a pool of at most parallel
// workers and blocks until all started jobs finish.
//
// Semantics:
//   - parallel <= 0 selects GOMAXPROCS workers; the pool is clamped to n.
//   - parallel == 1 (or n == 1) runs inline on the caller's goroutine and
//     stops at the first error, exactly like the pre-pool sequential loop.
//   - On error, jobs not yet started are abandoned; jobs already in flight
//     run to completion (a sim run cannot be interrupted midway).
//   - All errors observed are aggregated with errors.Join in job-index
//     order, so the same failing set yields the same error text.
func forEachParallel(parallel, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	parallel = clampParallelism(parallel, n)
	if parallel == 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
	)
	next.Store(-1)
	errs := make([]error, n) // disjoint slots; wg.Wait is the barrier
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || stopped.Load() {
					return
				}
				if err := job(i); err != nil {
					errs[i] = err
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
