package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wadeploy/internal/metrics"
)

// FormatMetricsComparison renders one row per registry instrument with a
// column per configuration, so the effect of each design rule shows up as a
// counter moving between columns (e.g. sqldb_statements_total collapsing
// once query caching is on). Labeled children (name{label="v"}) are omitted
// to keep the table one row per substrate signal; histograms appear as their
// mean in milliseconds.
func FormatMetricsComparison(results []*Result) string {
	if len(results) == 0 {
		return "(no results)\n"
	}
	type row struct {
		name   string
		values map[int]string // result index -> cell
	}
	rows := make(map[string]*row)
	get := func(name string) *row {
		r, ok := rows[name]
		if !ok {
			r = &row{name: name, values: make(map[int]string)}
			rows[name] = r
		}
		return r
	}
	for i, res := range results {
		if res.Metrics == nil {
			continue
		}
		for _, c := range res.Metrics.Counters {
			if strings.ContainsRune(c.Name, '{') {
				continue
			}
			get(c.Name).values[i] = fmt.Sprintf("%d", c.Value)
		}
		for _, g := range res.Metrics.Gauges {
			if strings.ContainsRune(g.Name, '{') {
				continue
			}
			get(g.Name).values[i] = fmt.Sprintf("%d", g.Value)
		}
		for _, h := range res.Metrics.Histograms {
			if strings.ContainsRune(h.Name, '{') || h.Count == 0 {
				continue
			}
			mean := time.Duration(h.SumNs / h.Count)
			get(h.Name + " (mean ms)").values[i] = ms(mean)
		}
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)

	nameWidth := len("Metric")
	for _, n := range names {
		if len(n) > nameWidth {
			nameWidth = len(n)
		}
	}
	colWidth := 12
	for _, res := range results {
		if n := len(res.Config.String()); n > colWidth {
			colWidth = n
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", nameWidth, "Metric")
	for _, res := range results {
		fmt.Fprintf(&b, " %*s", colWidth, res.Config.String())
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, strings.Repeat("-", nameWidth+(colWidth+1)*len(results)))
	for _, n := range names {
		r := rows[n]
		fmt.Fprintf(&b, "%-*s", nameWidth, n)
		for i := range results {
			v, ok := r.values[i]
			if !ok {
				v = "-"
			}
			fmt.Fprintf(&b, " %*s", colWidth, v)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// CounterFrom returns a named counter's value from a snapshot (0 if absent).
func CounterFrom(s *metrics.Snapshot, name string) int64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
