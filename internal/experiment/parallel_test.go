package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wadeploy/internal/core"
)

// parallelTestOptions is short enough for CI but long enough that all five
// configurations produce non-trivial statistics.
func parallelTestOptions(parallelism int) RunOptions {
	return RunOptions{
		Seed:        7,
		Warmup:      10 * time.Second,
		Duration:    time.Minute,
		Parallelism: parallelism,
	}
}

// TestParallelRunTableDeterminism is the regression guard for the parallel
// scheduler: the rendered tables and figures of a parallel table run must be
// byte-identical to the sequential run, because each run owns its own
// environment and seed and results are ordered by input slot, not by
// completion order.
func TestParallelRunTableDeterminism(t *testing.T) {
	render := func(results []*Result) string {
		return FormatTable(results) + FormatTableP95(results) +
			FormatFigure(results) + FormatDiagnostics(results)
	}
	seq, err := RunTable(PetStore, parallelTestOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	want := render(seq)
	// Wider than any plausible GOMAXPROCS effect: 4 workers interleave even
	// on a single-CPU runner, and the race detector patrols the overlap.
	for _, par := range []int{0, 4} {
		got, err := RunTable(PetStore, parallelTestOptions(par))
		if err != nil {
			t.Fatal(err)
		}
		if r := render(got); r != want {
			t.Errorf("parallelism %d rendered different tables than sequential run:\n--- sequential ---\n%s\n--- parallel ---\n%s", par, want, r)
		}
	}
}

// TestParallelSweepDeterminism pins the same property for the sweep paths.
func TestParallelSweepDeterminism(t *testing.T) {
	lats := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	seq, err := LatencySweep(RUBiS, core.AsyncUpdates, lats, parallelTestOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := LatencySweep(RUBiS, core.AsyncUpdates, lats, parallelTestOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatSweep("wan-ms", par), FormatSweep("wan-ms", seq); got != want {
		t.Errorf("parallel latency sweep differs:\n%s\nvs sequential:\n%s", got, want)
	}
}

func TestClampParallelism(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	tests := []struct {
		parallel, n, want int
	}{
		{parallel: 1, n: 5, want: 1},
		{parallel: 2, n: 8, want: 2},
		{parallel: 10, n: 3, want: 3},             // never wider than the job count
		{parallel: 5, n: 1, want: 1},              // single-run fast path
		{parallel: 0, n: procs + 8, want: procs},  // default: one per CPU
		{parallel: -3, n: procs + 8, want: procs}, // negative: same default
	}
	for _, tc := range tests {
		if got := clampParallelism(tc.parallel, tc.n); got != tc.want {
			t.Errorf("clampParallelism(%d, %d) = %d, want %d", tc.parallel, tc.n, got, tc.want)
		}
	}
}

func TestForEachParallelRunsAllJobs(t *testing.T) {
	for _, par := range []int{-1, 0, 1, 2, 7, 64} {
		const n = 20
		var ran [n]atomic.Int32
		err := forEachParallel(par, n, func(i int) error {
			ran[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Errorf("parallel=%d: job %d ran %d times, want 1", par, i, got)
			}
		}
	}
}

func TestForEachParallelZeroJobs(t *testing.T) {
	if err := forEachParallel(4, 0, func(int) error {
		t.Error("job ran for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestForEachParallelSequentialStopsAtFirstError pins the parallel==1 fast
// path: it must behave exactly like the old sequential loop, returning the
// first error unwrapped and never starting later jobs.
func TestForEachParallelSequentialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var started int
	err := forEachParallel(1, 10, func(i int) error {
		started++
		if i == 3 {
			return boom
		}
		return nil
	})
	if err != boom { //nolint:errorlint // fast path returns the error itself
		t.Errorf("got error %v, want boom unwrapped", err)
	}
	if started != 4 {
		t.Errorf("sequential path started %d jobs, want 4 (0..3)", started)
	}
}

// TestForEachParallelFirstErrorCancels verifies prompt cancellation: after a
// job fails, workers stop pulling new jobs, so most of a long queue is never
// started even though in-flight jobs run to completion.
func TestForEachParallelFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	const n, par = 64, 4
	var started atomic.Int32
	err := forEachParallel(par, n, func(i int) error {
		started.Add(1)
		if i == 0 {
			return boom // fail immediately on the first job
		}
		time.Sleep(20 * time.Millisecond) // hold the other workers in flight
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("got error %v, want it to wrap boom", err)
	}
	// Worst case: all par workers claimed a job before the failure landed,
	// plus one extra claim per worker racing the stop flag.
	if got := started.Load(); got > 2*par {
		t.Errorf("%d jobs started after first error, want <= %d", got, 2*par)
	}
}

// TestForEachParallelAggregatesErrors verifies that concurrent failures are
// all reported, joined in job-index order. A barrier makes every job start
// before any fails, so all three errors are deterministically observed.
func TestForEachParallelAggregatesErrors(t *testing.T) {
	const n = 3
	var barrier sync.WaitGroup
	barrier.Add(n)
	err := forEachParallel(n, n, func(i int) error {
		barrier.Done()
		barrier.Wait() // all jobs in flight before the first failure lands
		return fmt.Errorf("job %d failed", i)
	})
	if err == nil {
		t.Fatal("want error, got nil")
	}
	want := "job 0 failed\njob 1 failed\njob 2 failed"
	if got := err.Error(); got != want {
		t.Errorf("aggregated error = %q, want %q (index order)", got, want)
	}
}
