package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wadeploy/internal/controller"
	"wadeploy/internal/core"
	"wadeploy/internal/faults"
	"wadeploy/internal/simnet"
	"wadeploy/internal/trace"
	"wadeploy/internal/workload"
)

// AdaptArm is one arm of the adaptation experiment: a full run plus the
// time-bucketed view of what the partitioned edge's clients experienced.
type AdaptArm struct {
	// Label names the arm: "static", "resilient", "adaptive".
	Label string
	// Config is the deployed configuration (the extension target for the
	// adaptive arm).
	Config core.ConfigID
	// Controller reports whether the re-placement controller ran.
	Controller bool
	// Full is the run result; Full.Adapt is non-nil on the adaptive arm.
	Full *Result
	// Obs is the per-arm request accumulator on the partitioned edge's
	// client node (10s buckets over the whole run, warm-up included).
	Obs *workload.WindowObserver
}

// AdaptReport is the adaptation experiment's outcome: the canonical fault
// schedule replayed against a static remote-façade deployment, the PR 5
// static-resilience deployment, and the controller-driven adaptive
// deployment, all under identical seeds and workloads.
type AdaptReport struct {
	App       AppID
	Schedule  *faults.Schedule
	Window    [2]time.Duration // scored outage window
	Node      string           // scored client node
	Warmup    time.Duration
	Horizon   time.Duration // run end (warm-up + measured duration)
	Static    *AdaptArm
	Resilient *AdaptArm
	Adaptive  *AdaptArm
}

// Arms returns the three arms in presentation order.
func (r *AdaptReport) Arms() []*AdaptArm {
	return []*AdaptArm{r.Static, r.Resilient, r.Adaptive}
}

// adaptBucket is the WindowObserver bucket width: fine enough to separate
// the pre-migration, steady-state and outage phases of a quick run.
const adaptBucket = 10 * time.Second

// RunAdapt runs the online re-placement experiment for PetStore: three arms
// under the same fault schedule (the canonical outage when opts.Schedule is
// nil) with the resilience machinery enabled (DefaultResilience when
// opts.Resilience is nil):
//
//   - static: the remote-façade deployment, controller off — what the
//     adaptive run would be stuck with if it never re-placed;
//   - resilient: the async-updates deployment, controller off — the PR 5
//     static-resilience baseline the availability comparison is against;
//   - adaptive: starts at remote façade with the controller on; the
//     controller observes the traced page mix, extends the replica bundle
//     to the edges by live migration, suspends pushes across the partition
//     and resynchronizes the stale edge after it heals.
//
// cfg is the adaptive arm's extension target (and the resilient arm's
// configuration); it must be at least StatefulCaching. Runs are
// deterministic: the same seed yields byte-identical reports at any
// Parallelism.
func RunAdapt(app AppID, cfg core.ConfigID, opts RunOptions) (*AdaptReport, error) {
	if app != PetStore {
		return nil, fmt.Errorf("experiment: adapt is PetStore-only")
	}
	if opts.Schedule == nil {
		opts.Schedule = faults.Canonical(opts.Warmup, opts.Duration)
	}
	if opts.Resilience == nil {
		opts.Resilience = core.DefaultResilience()
	}
	if opts.Adaptive == nil {
		opts.Adaptive = &controller.Options{}
	}
	window := opts.Schedule.Window
	if window == [2]time.Duration{} {
		window = [2]time.Duration{opts.Warmup, opts.Warmup + opts.Duration}
	}
	node := simnet.NodeClientsEdge1

	rep := &AdaptReport{
		App:      app,
		Schedule: opts.Schedule,
		Window:   window,
		Node:     node,
		Warmup:   opts.Warmup,
		Horizon:  opts.Warmup + opts.Duration,
	}
	arms := []*AdaptArm{
		{Label: "static", Config: core.RemoteFacade},
		{Label: "resilient", Config: cfg},
		{Label: "adaptive", Config: cfg, Controller: true},
	}
	err := forEachParallel(opts.Parallelism, len(arms), func(i int) error {
		arm := arms[i]
		obs := workload.NewWindowObserver(node, adaptBucket)
		ropts := opts
		ropts.Observer = obs.Observe
		if arm.Controller {
			if ropts.Trace == nil {
				// The controller re-plans on the flight recorder's observed
				// page mix; tracing adds no delays and draws no randomness.
				ropts.Trace = &trace.Options{SampleEvery: 4}
			}
		} else {
			ropts.Adaptive = nil
		}
		full, err := Run(app, arm.Config, ropts)
		if err != nil {
			return err
		}
		arm.Full = full
		arm.Obs = obs
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.Static, rep.Resilient, rep.Adaptive = arms[0], arms[1], arms[2]
	return rep, nil
}

// AdaptLag is the controller's reaction to one fault onset.
type AdaptLag struct {
	Onset     time.Duration
	Detected  time.Duration // first fault-detected event at/after the onset (0 = none)
	Recovered time.Duration // first resync completing after the onset (0 = none)
}

// Lags measures the adaptation lag against every fault onset of the
// schedule: how long after each onset the controller first observed a lost
// path, and when the post-fault resynchronization completed.
func (r *AdaptReport) Lags() []AdaptLag {
	var out []AdaptLag
	ad := r.Adaptive.Full.Adapt
	if ad == nil {
		return out
	}
	for _, onset := range r.Schedule.Onsets() {
		lag := AdaptLag{Onset: onset}
		for _, ev := range ad.Events {
			if ev.At < onset {
				continue
			}
			if lag.Detected == 0 && ev.Kind == controller.EventFaultDetected {
				lag.Detected = ev.At
			}
			if lag.Recovered == 0 && ev.Kind == controller.EventResynced {
				lag.Recovered = ev.At
			}
		}
		out = append(out, lag)
	}
	return out
}

// MigrationSpan returns the virtual-time span of the adaptive arm's
// extension program: the start of the first migration and the end of the
// last extension migration (resyncs excluded). ok is false if the
// controller never migrated.
func (r *AdaptReport) MigrationSpan() (first, last time.Duration, ok bool) {
	ad := r.Adaptive.Full.Adapt
	if ad == nil {
		return 0, 0, false
	}
	for _, m := range ad.Migrations {
		if m.Resync || m.Failed {
			continue
		}
		if !ok || m.Start < first {
			first = m.Start
		}
		if m.End > last {
			last = m.End
		}
		ok = true
	}
	return first, last, ok
}

// PostWindow returns the longest fault-free stretch of virtual time after
// the adaptive arm's extension program completed — the window the
// steady-state post-migration latency comparison scores. ok is false when
// the controller never migrated or no fault-free time remained.
func (r *AdaptReport) PostWindow() (from, to time.Duration, ok bool) {
	_, last, migrated := r.MigrationSpan()
	if !migrated || last >= r.Horizon {
		return 0, 0, false
	}
	// Merge the schedule's fault-covered intervals, then walk the gaps
	// after the last migration and keep the widest.
	type iv struct{ a, b time.Duration }
	var ivs []iv
	for _, e := range r.Schedule.Events {
		ivs = append(ivs, iv{e.At, e.At + e.Duration})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	var merged []iv
	for _, v := range ivs {
		if n := len(merged); n > 0 && v.a <= merged[n-1].b {
			if v.b > merged[n-1].b {
				merged[n-1].b = v.b
			}
			continue
		}
		merged = append(merged, v)
	}
	cursor := last
	for _, v := range merged {
		if v.b <= cursor {
			continue
		}
		if v.a > cursor && v.a-cursor > to-from {
			from, to = cursor, v.a
		}
		cursor = v.b
	}
	if cursor < r.Horizon && r.Horizon-cursor > to-from {
		from, to = cursor, r.Horizon
	}
	return from, to, to > from
}

// FormatAdapt renders the adaptation report: the controller's decision
// timeline, the adaptation lag against each fault onset, availability on
// the partitioned edge during the outage window across the three arms, and
// the steady-state latency before and after the extension program.
func FormatAdapt(r *AdaptReport) string {
	var b strings.Builder
	ad := r.Adaptive.Full.Adapt

	fmt.Fprintf(&b, "Online re-placement under schedule %q (target %s).\n\n",
		r.Schedule.Name, r.Resilient.Config.Title())

	fmt.Fprintln(&b, "Controller timeline:")
	if ad == nil || len(ad.Events) == 0 {
		fmt.Fprintln(&b, "  (no controller events)")
	}
	if ad != nil {
		for _, ev := range ad.Events {
			loc := ""
			if ev.Server != "" {
				loc = " " + ev.Server
			}
			detail := ev.Detail
			if ev.Win > 0 {
				detail = fmt.Sprintf("win %.1f%%; %s", 100*ev.Win, detail)
			}
			fmt.Fprintf(&b, "  %8s  epoch %-3d %-17s%s  %s\n",
				ev.At.Round(time.Second), ev.Epoch, ev.Kind, loc, detail)
		}
		fmt.Fprintf(&b, "  epochs=%d migrations=%d extended=%v final=%s\n",
			ad.Epochs, len(ad.Migrations), ad.Extended, ad.FinalConfig.Title())
	}

	fmt.Fprintln(&b, "\nAdaptation lag (virtual time after each fault onset):")
	for _, lag := range r.Lags() {
		det, rec := "-", "-"
		if lag.Detected > 0 {
			det = fmt.Sprint((lag.Detected - lag.Onset).Round(time.Second))
		}
		if lag.Recovered > 0 {
			rec = fmt.Sprint((lag.Recovered - lag.Onset).Round(time.Second))
		}
		fmt.Fprintf(&b, "  onset %8s: detected +%s, resynced +%s\n",
			lag.Onset.Round(time.Second), det, rec)
	}

	fmt.Fprintf(&b, "\nAvailability on %s during the outage window [%v, %v]:\n",
		r.Node, r.Window[0].Round(time.Second), r.Window[1].Round(time.Second))
	for _, arm := range r.Arms() {
		w := arm.Obs.Range(r.Window[0], r.Window[1])
		fmt.Fprintf(&b, "  %-10s (%-22s) %6.1f%%  ok=%-6d fail=%-6d mean-ok=%s\n",
			arm.Label, arm.Config.Title(), 100*w.Availability(), w.OK, w.Fail, ms(w.Mean())+"ms")
	}

	// Steady-state latency: the same two stretches scored for every arm —
	// before the adaptive arm's first migration, and the longest
	// fault-free window after its extension program completed.
	first, _, migrated := r.MigrationSpan()
	postFrom, postTo, havePost := r.PostWindow()
	if migrated && havePost {
		fmt.Fprintf(&b, "\nSteady-state mean latency on %s (pre: [0, %v) before extension; post: fault-free [%v, %v) after it):\n",
			r.Node, first.Round(time.Second), postFrom.Round(time.Second), postTo.Round(time.Second))
		for _, arm := range r.Arms() {
			pre := arm.Obs.Range(0, first)
			post := arm.Obs.Range(postFrom, postTo)
			fmt.Fprintf(&b, "  %-10s pre=%sms post=%sms\n", arm.Label, ms(pre.Mean()), ms(post.Mean()))
		}
	} else {
		fmt.Fprintln(&b, "\n(controller never migrated; no steady-state comparison)")
	}
	return b.String()
}
