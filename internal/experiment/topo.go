package experiment

import (
	"fmt"
	"strings"
	"time"

	"wadeploy/internal/container"
	"wadeploy/internal/core"
	"wadeploy/internal/metrics"
	"wadeploy/internal/petstore"
	"wadeploy/internal/rubis"
	"wadeploy/internal/sim"
	"wadeploy/internal/simnet"
)

// TopoSweepOptions parameterizes a topology scaling sweep.
type TopoSweepOptions struct {
	RunOptions

	// Config is the configuration under test (default QueryCaching — the
	// paper's best all-round pattern, and the one whose replica footprint
	// partitioning shrinks).
	Config core.ConfigID

	// Partitions > 0 shards the hot entities (Item/Inventory for Pet Store,
	// Item for RUBiS) into this many hash partitions spread round-robin over
	// the edges. 0 keeps the paper's full replication at every PoP.
	Partitions int

	// Hierarchy overrides per-point spec fields other than Edges (link
	// classes, hub count, redundancy). The zero value uses the defaults.
	Hierarchy simnet.HierarchySpec
}

// TopoPoint is one measurement of the edge-count scaling sweep.
type TopoPoint struct {
	Edges      int
	Hubs       int
	Partitions int

	// Session means by pattern and locality — the per-page latency rollup.
	LocalBrowser  time.Duration
	RemoteBrowser time.Duration
	LocalWriter   time.Duration
	RemoteWriter  time.Duration

	Samples int
	Errors  int

	// WANBytes is the traffic crossing backbone/metro links (every link with
	// a hub endpoint) during the run, both directions.
	WANBytes int64
	// Msgs is the total message count across the whole network.
	Msgs int64

	// ReplicaEntries is the total entity state cached across every edge
	// replica at the end of the run — the footprint partitioning exists to
	// shrink (slices, not full copies).
	ReplicaEntries int64
	// Pushes counts replica push deliveries (sync + async); partition-scoped
	// propagation sends each write to its owners only.
	Pushes int64
}

// TopoSweep runs one scaling curve: for each edge count, build an N-edge
// hierarchy, deploy the app partition-aware, offer the paper's total load
// spread over the N edge client groups, and measure latency and WAN traffic.
// Same seed, same options: byte-identical points at any Parallelism.
func TopoSweep(app AppID, edgeCounts []int, opts TopoSweepOptions) ([]TopoPoint, error) {
	if opts.Config == 0 {
		opts.Config = core.QueryCaching
	}
	if !knownConfig(opts.Config) {
		return nil, fmt.Errorf("experiment: unknown configuration %d", int(opts.Config))
	}
	for _, n := range edgeCounts {
		if n < 1 {
			return nil, fmt.Errorf("experiment: topo sweep needs >= 1 edges, got %d", n)
		}
	}
	out := make([]TopoPoint, len(edgeCounts))
	err := forEachParallel(opts.Parallelism, len(edgeCounts), func(i int) error {
		pt, err := runTopoPoint(app, edgeCounts[i], opts)
		if err != nil {
			return fmt.Errorf("topo sweep %d edges: %w", edgeCounts[i], err)
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func runTopoPoint(app AppID, edges int, opts TopoSweepOptions) (TopoPoint, error) {
	env := sim.NewEnv(opts.Seed)
	spec := opts.Hierarchy
	spec.Edges = edges
	var depOpts core.Options
	switch app {
	case PetStore:
		depOpts = core.DefaultOptions()
	case RUBiS:
		depOpts = rubis.DeployOptions()
	default:
		return TopoPoint{}, fmt.Errorf("experiment: unknown app %q", app)
	}
	depOpts.Resilience = opts.Resilience
	depOpts.Replication = opts.Replication
	d, h, err := core.NewHierarchicalDeployment(env, depOpts, spec)
	if err != nil {
		return TopoPoint{}, err
	}
	var pspec *container.PartitionSpec
	if opts.Partitions > 0 {
		pspec = &container.PartitionSpec{Scheme: container.HashPartition, Partitions: opts.Partitions}
	}
	var r *Result
	var wiring *core.Wiring
	switch app {
	case PetStore:
		a, err := petstore.DeployTopo(d, opts.Config, petstore.TopoOptions{Partition: pspec})
		if err != nil {
			return TopoPoint{}, err
		}
		wiring = a.Wiring()
		r, err = collect(app, opts.Config, d, opts.RunOptions, petstore.TopoWorkload(a), petStorePatterns, columnsFor(app))
		if err != nil {
			return TopoPoint{}, err
		}
	default:
		a, err := rubis.DeployTopo(d, opts.Config, rubis.TopoOptions{Partition: pspec})
		if err != nil {
			return TopoPoint{}, err
		}
		wiring = a.Wiring()
		r, err = collect(app, opts.Config, d, opts.RunOptions, rubis.TopoWorkload(a), rubisPatterns, columnsFor(app))
		if err != nil {
			return TopoPoint{}, err
		}
	}
	sp := point(app, r, float64(edges))
	var entries int64
	if wiring != nil {
		for _, e := range d.Edges {
			for _, ro := range wiring.Replicas[e.Name()] {
				entries += int64(ro.Cached())
			}
		}
	}
	return TopoPoint{
		Edges:          edges,
		Hubs:           len(h.HubNames),
		Partitions:     opts.Partitions,
		LocalBrowser:   sp.LocalBrowser,
		RemoteBrowser:  sp.RemoteBrowser,
		LocalWriter:    sp.LocalWriter,
		RemoteWriter:   sp.RemoteWriter,
		Samples:        r.Samples,
		Errors:         r.Errors,
		WANBytes:       wanBytes(r.Metrics),
		Msgs:           counterValue(r.Metrics, "simnet_messages_total"),
		ReplicaEntries: entries,
		Pushes:         counterValue(r.Metrics, "container_replica_pushes_total"),
	}, nil
}

// knownConfig reports whether cfg is one of the study's configurations.
func knownConfig(cfg core.ConfigID) bool {
	for _, c := range core.Configs {
		if cfg == c {
			return true
		}
	}
	for _, c := range core.ExtensionConfigs {
		if cfg == c {
			return true
		}
	}
	return false
}

// wanBytes sums the per-link byte counters over links with a hub endpoint —
// in a hierarchy every backbone (main<->hub) and metro (hub<->edge) link, and
// nothing else, touches a hub.
func wanBytes(s *metrics.Snapshot) int64 {
	const prefix = `simnet_link_bytes_total{link="`
	var total int64
	for _, c := range s.Counters {
		if !strings.HasPrefix(c.Name, prefix) {
			continue
		}
		link := strings.TrimSuffix(strings.TrimPrefix(c.Name, prefix), `"}`)
		if strings.Contains(link, "hub") {
			total += c.Value
		}
	}
	return total
}

func counterValue(s *metrics.Snapshot, name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// FormatTopo renders the scaling curve as an aligned table: per-pattern
// session latency plus WAN traffic per edge count.
func FormatTopo(app AppID, points []TopoPoint) string {
	var b strings.Builder
	part := "full replication"
	if len(points) > 0 && points[0].Partitions > 0 {
		part = fmt.Sprintf("%d hash partitions", points[0].Partitions)
	}
	fmt.Fprintf(&b, "topology scaling: %s, %s\n", app, part)
	fmt.Fprintf(&b, "%-6s %-5s %12s %12s %12s %12s %10s %10s %10s %8s %8s\n",
		"edges", "hubs", "loc-browse", "rem-browse", "loc-write", "rem-write", "wan-MB", "msgs", "replicas", "pushes", "errors")
	for _, pt := range points {
		fmt.Fprintf(&b, "%-6d %-5d %12s %12s %12s %12s %10.2f %10d %10d %8d %8d\n",
			pt.Edges, pt.Hubs,
			ms(pt.LocalBrowser), ms(pt.RemoteBrowser), ms(pt.LocalWriter), ms(pt.RemoteWriter),
			float64(pt.WANBytes)/(1024*1024), pt.Msgs, pt.ReplicaEntries, pt.Pushes, pt.Errors)
	}
	return b.String()
}
