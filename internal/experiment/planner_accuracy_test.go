package experiment

import (
	"math"
	"testing"
	"time"

	"wadeploy/internal/core"
	"wadeploy/internal/petstore"
	"wadeploy/internal/planner"
	"wadeploy/internal/rubis"
	"wadeploy/internal/sim"
)

// accuracyBand is the relative error the analytic model must stay within
// against the simulated session means for every paper configuration. The
// closed form ignores CPU queueing (main-server utilization peaks near 25%
// in the centralized runs) and histogram bucketing, which together account
// for a few percent.
const accuracyBand = 0.10

func plannerModels() map[AppID]*planner.Model {
	return map[AppID]*planner.Model{
		PetStore: petstore.PlannerModel(),
		RUBiS:    rubis.PlannerModel(),
	}
}

// simOverall reproduces the planner's objective from a simulated run: the
// client-weighted mean of the per-class session means.
func simOverall(m *planner.Model, r *Result) time.Duration {
	var num, den float64
	for _, cl := range m.Classes {
		num += float64(cl.Clients) * float64(r.SessionMeans[cl.Pattern][cl.Local])
		den += float64(cl.Clients)
	}
	return time.Duration(num / den)
}

func relErr(pred, sim time.Duration) float64 {
	return math.Abs(float64(pred)-float64(sim)) / float64(sim)
}

// TestPlannerPredictionsMatchSimulation validates the analytic cost model
// against the simulation engine: for each application and each of the five
// paper configurations, the predicted per-class session means and the
// overall objective must land within accuracyBand of the measured values.
func TestPlannerPredictionsMatchSimulation(t *testing.T) {
	ps, rb := tables(t)
	sims := map[AppID][]*Result{PetStore: ps, RUBiS: rb}
	for app, m := range plannerModels() {
		res, err := planner.Search(m)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		for _, rk := range res.Ranked {
			if !rk.HasConfig {
				continue
			}
			sim := byConfig(sims[app], rk.Config)
			if sim == nil {
				t.Fatalf("%s: no simulated result for %s", app, rk.Config)
			}
			for _, cm := range rk.PerClass {
				got := sim.SessionMeans[cm.Pattern][cm.Local]
				if got == 0 {
					t.Fatalf("%s/%s: no simulated session mean for %s local=%v",
						app, rk.Config, cm.Pattern, cm.Local)
				}
				if e := relErr(cm.Mean, got); e > accuracyBand {
					t.Errorf("%s/%s %s local=%v: predicted %v, simulated %v (err %.1f%% > %.0f%%)",
						app, rk.Config, cm.Pattern, cm.Local, cm.Mean, got,
						e*100, accuracyBand*100)
				}
			}
			simOv := simOverall(m, sim)
			if e := relErr(rk.Overall, simOv); e > accuracyBand {
				t.Errorf("%s/%s overall: predicted %v, simulated %v (err %.1f%% > %.0f%%)",
					app, rk.Config, rk.Overall, simOv, e*100, accuracyBand*100)
			} else {
				t.Logf("%s/%s overall: predicted %v, simulated %v (err %.1f%%)",
					app, rk.Config, rk.Overall, simOv, relErr(rk.Overall, simOv)*100)
			}
		}
	}
}

// TestPlannerRecommendsAsyncUpdates pins the headline result: under the
// paper's 80/20 two-remote-group mix the advisor's top-ranked placement is
// the full async-updates configuration for both applications, and the
// simulation agrees that it beats every other paper configuration.
func TestPlannerRecommendsAsyncUpdates(t *testing.T) {
	ps, rb := tables(t)
	sims := map[AppID][]*Result{PetStore: ps, RUBiS: rb}
	for app, m := range plannerModels() {
		res, err := planner.Search(m)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		best := res.Best()
		if !best.HasConfig || best.Config != core.AsyncUpdates {
			t.Errorf("%s: top-ranked candidate is %s (%s), want %s",
				app, best.Candidate, best.ConfigName(), core.AsyncUpdates)
		}
		if got := res.GreedyCandidate(); got != best.Candidate {
			t.Errorf("%s: greedy climb ends at %s, exhaustive best is %s",
				app, got, best.Candidate)
		}
		// The simulation ranks the paper configs the same way at the top.
		bestSim, bestCfg := time.Duration(math.MaxInt64), core.Centralized
		for _, r := range sims[app] {
			if ov := simOverall(m, r); ov < bestSim {
				bestSim, bestCfg = ov, r.Config
			}
		}
		if bestCfg != core.AsyncUpdates {
			t.Errorf("%s: simulation ranks %s best, expected %s", app, bestCfg, core.AsyncUpdates)
		}
	}
}

// TestPlannerLadderClimbsAllFourPatterns checks the greedy climb: it starts
// by replicating the web tier (every other pattern depends on it), every
// step strictly improves the objective, and it ends having adopted all four
// paper patterns. The paper's evaluation applies the patterns in a fixed
// cumulative order; the greedy climb may adopt the two caching patterns in
// either order depending on which page weights dominate, but it must arrive
// at the same summit.
func TestPlannerLadderClimbsAllFourPatterns(t *testing.T) {
	for app, m := range plannerModels() {
		res, err := planner.Search(m)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if len(res.Ladder) != len(planner.Features) {
			t.Fatalf("%s: greedy ladder has %d steps (%v), want %d",
				app, len(res.Ladder), res.Ladder, len(planner.Features))
		}
		if res.Ladder[0].Feature != planner.FeatureWeb {
			t.Errorf("%s: ladder starts with %s, want %s",
				app, res.Ladder[0].Feature, planner.FeatureWeb)
		}
		prev := res.Base
		seen := make(map[planner.Feature]bool)
		for i, step := range res.Ladder {
			if seen[step.Feature] {
				t.Errorf("%s: ladder step %d repeats %s", app, i, step.Feature)
			}
			seen[step.Feature] = true
			if step.After >= prev {
				t.Errorf("%s: ladder step %d does not improve (%v -> %v)",
					app, i, prev, step.After)
			}
			prev = step.After
		}
	}
}

// TestPlannerPlansMatchApplicationPlans pins the synthesized placement
// against the hand-written application Plan() for each paper configuration:
// the advisor must emit byte-for-byte the same placements the deployment
// descriptors install.
func TestPlannerPlansMatchApplicationPlans(t *testing.T) {
	appPlan := func(app AppID, cfg core.ConfigID) *core.Plan {
		env := sim.NewEnv(1)
		switch app {
		case PetStore:
			d, err := core.NewPaperDeployment(env, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			a, err := petstore.Deploy(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return a.Plan()
		default:
			d, err := core.NewPaperDeployment(env, rubis.DeployOptions())
			if err != nil {
				t.Fatal(err)
			}
			a, err := rubis.Deploy(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return a.Plan()
		}
	}
	for app, m := range plannerModels() {
		for _, c := range planner.Candidates() {
			cfg, ok := c.Config()
			if !ok {
				continue
			}
			got := m.PlanFor(c)
			want := appPlan(app, cfg)
			if len(got.Placements) != len(want.Placements) {
				t.Errorf("%s/%s: synthesized %d placements, app plan has %d",
					app, cfg, len(got.Placements), len(want.Placements))
				continue
			}
			for i, p := range got.Placements {
				w := want.Placements[i]
				if p.Desc != w.Desc {
					t.Errorf("%s/%s placement %d: desc %+v, want %+v", app, cfg, i, p.Desc, w.Desc)
				}
				if len(p.Servers) != len(w.Servers) {
					t.Errorf("%s/%s %s: servers %v, want %v", app, cfg, p.Desc.Name, p.Servers, w.Servers)
					continue
				}
				for j := range p.Servers {
					if p.Servers[j] != w.Servers[j] {
						t.Errorf("%s/%s %s: servers %v, want %v", app, cfg, p.Desc.Name, p.Servers, w.Servers)
						break
					}
				}
			}
		}
	}
}
