package experiment

import (
	"fmt"
	"strings"
	"time"

	"wadeploy/internal/core"
	"wadeploy/internal/petstore"
	"wadeploy/internal/rubis"
	"wadeploy/internal/sim"
	"wadeploy/internal/simnet"
)

// SweepPoint is one measurement of a sensitivity sweep.
type SweepPoint struct {
	X             float64 // the swept parameter (WAN one-way ms, or offered load req/s)
	LocalBrowser  time.Duration
	RemoteBrowser time.Duration
	LocalWriter   time.Duration
	RemoteWriter  time.Duration
}

// runWith executes one experiment with custom topology and workload scale.
func runWith(app AppID, cfg core.ConfigID, opts RunOptions, topo simnet.TopologyParams, scale float64) (*Result, error) {
	env := sim.NewEnv(opts.Seed)
	var depOpts core.Options
	switch app {
	case PetStore:
		depOpts = core.DefaultOptions()
	case RUBiS:
		depOpts = rubis.DeployOptions()
	default:
		return nil, fmt.Errorf("experiment: unknown app %q", app)
	}
	if topo.WANOneWay > 0 {
		depOpts.Topology = topo
	}
	d, err := core.NewPaperDeployment(env, depOpts)
	if err != nil {
		return nil, err
	}
	switch app {
	case PetStore:
		a, err := petstore.Deploy(d, cfg)
		if err != nil {
			return nil, err
		}
		return collect(app, cfg, d, opts, petstore.PaperWorkloadScaled(a, scale), petStorePatterns, columnsFor(app))
	default:
		a, err := rubis.Deploy(d, cfg)
		if err != nil {
			return nil, err
		}
		return collect(app, cfg, d, opts, rubis.PaperWorkloadScaled(a, scale), rubisPatterns, columnsFor(app))
	}
}

// point converts a run's session means into a sweep point.
func point(app AppID, r *Result, x float64) SweepPoint {
	browser, writer := petstore.PatternBrowser, petstore.PatternBuyer
	if app == RUBiS {
		browser, writer = rubis.PatternBrowser, rubis.PatternBidder
	}
	return SweepPoint{
		X:             x,
		LocalBrowser:  r.SessionMeans[browser][true],
		RemoteBrowser: r.SessionMeans[browser][false],
		LocalWriter:   r.SessionMeans[writer][true],
		RemoteWriter:  r.SessionMeans[writer][false],
	}
}

// LatencySweep measures session response times as the WAN one-way latency
// varies — how each configuration's benefit scales with network distance
// (not a paper experiment; a sensitivity study over its fixed 100 ms point).
func LatencySweep(app AppID, cfg core.ConfigID, oneWays []time.Duration, opts RunOptions) ([]SweepPoint, error) {
	// Validate every point before launching workers so bad input fails the
	// same way regardless of parallelism.
	for _, wan := range oneWays {
		if wan <= 0 {
			return nil, fmt.Errorf("experiment: non-positive WAN latency %v", wan)
		}
	}
	out := make([]SweepPoint, len(oneWays))
	err := forEachParallel(opts.Parallelism, len(oneWays), func(i int) error {
		wan := oneWays[i]
		topo := simnet.DefaultTopologyParams()
		topo.WANOneWay = wan
		r, err := runWith(app, cfg, opts, topo, 1)
		if err != nil {
			return fmt.Errorf("latency sweep %v: %w", wan, err)
		}
		out[i] = point(app, r, float64(wan)/float64(time.Millisecond))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LoadSweep measures session response times as the offered load scales
// around the paper's 30 req/s operating point, exposing where CPU queueing
// begins to dominate.
func LoadSweep(app AppID, cfg core.ConfigID, scales []float64, opts RunOptions) ([]SweepPoint, error) {
	for _, s := range scales {
		if s <= 0 {
			return nil, fmt.Errorf("experiment: non-positive load scale %v", s)
		}
	}
	out := make([]SweepPoint, len(scales))
	err := forEachParallel(opts.Parallelism, len(scales), func(i int) error {
		s := scales[i]
		r, err := runWith(app, cfg, opts, simnet.TopologyParams{}, s)
		if err != nil {
			return fmt.Errorf("load sweep %v: %w", s, err)
		}
		out[i] = point(app, r, 30*s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatSweep renders sweep points as an aligned table.
func FormatSweep(xLabel string, points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %12s\n",
		xLabel, "loc-browse", "rem-browse", "loc-write", "rem-write")
	for _, pt := range points {
		fmt.Fprintf(&b, "%-14.1f %12s %12s %12s %12s\n", pt.X,
			ms(pt.LocalBrowser), ms(pt.RemoteBrowser), ms(pt.LocalWriter), ms(pt.RemoteWriter))
	}
	return b.String()
}
