package experiment

import (
	"fmt"
	"strings"
	"time"
)

// ms renders a duration as integer milliseconds, like the paper's tables.
func ms(d time.Duration) string {
	return fmt.Sprintf("%d", d.Round(time.Millisecond)/time.Millisecond)
}

// shortPage abbreviates page names roughly like the paper's column headers.
var shortPage = map[string]string{
	"Main": "Main", "Category": "Categ", "Product": "Prod", "Item": "Item",
	"Search": "Search", "Signin": "S/in", "VerifySignin": "Verif",
	"Cart": "Cart", "Checkout": "Ch/out", "PlaceOrder": "Pl.Or.",
	"Billing": "Bill", "Commit": "Commit", "Signout": "S/out",
	"Browse": "Browse", "AllCategories": "AllCat", "AllRegions": "AllReg",
	"Region": "Region", "CategoryRegion": "Ct&Rg", "Bids": "Bids",
	"UserInfo": "UsrInf", "PutBidAuth": "PBAuth", "PutBidForm": "PBForm",
	"StoreBid": "StBid", "PutCommentAuth": "PCAuth", "PutCommentForm": "PCForm",
	"StoreComment": "StComm",
}

func short(page string) string {
	if s, ok := shortPage[page]; ok {
		return s
	}
	return page
}

// FormatTable renders a full table run (Table 6 or Table 7): one
// Local/Remote row pair per configuration, one column per page.
func FormatTable(results []*Result) string {
	if len(results) == 0 {
		return "(no results)\n"
	}
	var b strings.Builder
	app := results[0].App
	title := "Table 6. Average response times (ms) for five Pet Store configurations."
	if app == RUBiS {
		title = "Table 7. Average response times (ms) for five RUBiS configurations."
	}
	fmt.Fprintln(&b, title)

	cols := results[0].Cells
	// Header rows: pattern spans and page abbreviations.
	fmt.Fprintf(&b, "%-22s %-6s", "Configuration", "Client")
	prevPattern := ""
	for _, c := range cols {
		label := short(c.Page)
		if c.Pattern != prevPattern {
			label = short(c.Page)
			prevPattern = c.Pattern
		}
		fmt.Fprintf(&b, " %6s", label)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-22s %-6s", "", "")
	prevPattern = ""
	for _, c := range cols {
		label := ""
		if c.Pattern != prevPattern {
			label = c.Pattern
			prevPattern = c.Pattern
		}
		fmt.Fprintf(&b, " %6s", label)
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, strings.Repeat("-", 30+7*len(cols)))

	for _, r := range results {
		fmt.Fprintf(&b, "%-22s %-6s", r.Config.Title(), "Local")
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %6s", ms(c.Local))
		}
		fmt.Fprintln(&b)
		fmt.Fprintf(&b, "%-22s %-6s", "", "Remote")
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %6s", ms(c.Remote))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatTableP95 renders the same table layout with 95th-percentile values
// instead of means: the tail-latency view the paper does not print but a
// deployer would want.
func FormatTableP95(results []*Result) string {
	if len(results) == 0 {
		return "(no results)\n"
	}
	var b strings.Builder
	app := results[0].App
	title := "Pet Store 95th-percentile response times (ms), five configurations."
	if app == RUBiS {
		title = "RUBiS 95th-percentile response times (ms), five configurations."
	}
	fmt.Fprintln(&b, title)
	cols := results[0].Cells
	fmt.Fprintf(&b, "%-22s %-6s", "Configuration", "Client")
	for _, c := range cols {
		fmt.Fprintf(&b, " %6s", short(c.Page))
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, strings.Repeat("-", 30+7*len(cols)))
	for _, r := range results {
		fmt.Fprintf(&b, "%-22s %-6s", r.Config.Title(), "Local")
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %6s", ms(c.LocalP95))
		}
		fmt.Fprintln(&b)
		fmt.Fprintf(&b, "%-22s %-6s", "", "Remote")
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %6s", ms(c.RemoteP95))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFigure renders Figure 7/8 as an ASCII bar chart: session average
// response times per configuration, grouped by (locality, pattern).
func FormatFigure(results []*Result) string {
	if len(results) == 0 {
		return "(no results)\n"
	}
	var b strings.Builder
	app := results[0].App
	title := "Figure 7. Java Pet Store session average response times."
	if app == RUBiS {
		title = "Figure 8. RUBiS session average response times."
	}
	fmt.Fprintln(&b, title)

	bars := Figure(results)
	var maxMean time.Duration
	for _, bar := range bars {
		if bar.Mean > maxMean {
			maxMean = bar.Mean
		}
	}
	if maxMean == 0 {
		maxMean = time.Millisecond
	}
	const width = 48
	group := ""
	for _, bar := range bars {
		loc := "Remote"
		if bar.Local {
			loc = "Local"
		}
		g := fmt.Sprintf("%s %s", loc, bar.Pattern)
		if g != group {
			group = g
			fmt.Fprintf(&b, "\n%s\n", g)
		}
		n := int(int64(width) * int64(bar.Mean) / int64(maxMean))
		fmt.Fprintf(&b, "  %-22s %6s ms |%s\n", bar.Config.Title(), ms(bar.Mean), strings.Repeat("#", n))
	}
	return b.String()
}

// FormatDiagnostics renders per-run counters useful when validating a run.
func FormatDiagnostics(results []*Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %9s %7s %9s %8s %8s %8s %8s\n",
		"Configuration", "samples", "errors", "rmiCalls", "mainCPU", "edgeCPU", "jmsPub", "jmsDel")
	for _, r := range results {
		fmt.Fprintf(&b, "%-22s %9d %7d %9d %7.1f%% %7.1f%% %8d %8d\n",
			r.Config.Title(), r.Samples, r.Errors, r.RemoteCalls,
			100*r.MainCPUUtil, 100*r.EdgeCPUUtil, r.JMSPublished, r.JMSDelivered)
	}
	return b.String()
}
