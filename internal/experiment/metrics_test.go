package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"wadeploy/internal/core"
)

// TestMetricsSnapshotDeterminism: the same seed must produce a byte-identical
// registry snapshot, including the sampled time series — the property the
// -metrics-out flag relies on.
func TestMetricsSnapshotDeterminism(t *testing.T) {
	opts := RunOptions{
		Seed:        7,
		Warmup:      10 * time.Second,
		Duration:    time.Minute,
		MetricsTick: 15 * time.Second,
	}
	run := func() []byte {
		r, err := Run(PetStore, core.QueryCaching, opts)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if r.Metrics == nil || len(r.Metrics.Counters) == 0 {
			t.Fatal("run returned no metrics snapshot")
		}
		data, err := json.Marshal(r.Metrics)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ between same-seed runs:\n%s\nvs\n%s", a, b)
	}
}

// TestMetricsTickSampling: with a tick configured, counters carry series
// points; without one, no series memory is spent.
func TestMetricsTickSampling(t *testing.T) {
	opts := RunOptions{Seed: 1, Warmup: 10 * time.Second, Duration: time.Minute}
	plain, err := Run(PetStore, core.Centralized, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, c := range plain.Metrics.Counters {
		if len(c.Series) != 0 {
			t.Fatalf("counter %s has %d series points without MetricsTick", c.Name, len(c.Series))
		}
	}
	opts.MetricsTick = 20 * time.Second
	ticked, err := Run(PetStore, core.Centralized, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	found := false
	for _, c := range ticked.Metrics.Counters {
		if c.Name == "simnet_messages_total" {
			found = true
			// 70s run, 20s tick: samples at 20/40/60s.
			if len(c.Series) != 3 {
				t.Fatalf("simnet_messages_total series has %d points, want 3", len(c.Series))
			}
			if c.Series[0].T != 20*time.Second {
				t.Fatalf("first sample at %v, want 20s", c.Series[0].T)
			}
		}
	}
	if !found {
		t.Fatal("web_requests_total not in snapshot")
	}
}
