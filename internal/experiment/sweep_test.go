package experiment

import (
	"strings"
	"testing"
	"time"

	"wadeploy/internal/core"
	"wadeploy/internal/simnet"
)

func sweepOpts() RunOptions {
	return RunOptions{Seed: 1, Warmup: 10 * time.Second, Duration: 90 * time.Second}
}

func TestLatencySweepCentralizedScalesWithWAN(t *testing.T) {
	lats := []time.Duration{25 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond}
	pts, err := LatencySweep(PetStore, core.Centralized, lats, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Remote browser pays ~4x the one-way latency (2 round trips) per page:
	// strictly increasing, roughly linear.
	for i := 1; i < len(pts); i++ {
		if pts[i].RemoteBrowser <= pts[i-1].RemoteBrowser {
			t.Fatalf("remote browser not increasing: %v", pts)
		}
	}
	// Local browser is latency-insensitive.
	spread := pts[2].LocalBrowser - pts[0].LocalBrowser
	if spread < 0 {
		spread = -spread
	}
	if spread > 20*time.Millisecond {
		t.Fatalf("local browser varied %v across WAN latencies", spread)
	}
	// The 250ms point should cost roughly 2x the WAN delta of the 100ms
	// point for remote clients (4 one-way crossings per page).
	d100 := pts[1].RemoteBrowser - pts[1].LocalBrowser
	d250 := pts[2].RemoteBrowser - pts[2].LocalBrowser
	ratio := float64(d250) / float64(d100)
	if ratio < 2.2 || ratio > 2.8 {
		t.Fatalf("delta ratio = %v, want ~2.5 (linear in latency)", ratio)
	}
}

func TestLatencySweepFinalConfigInsulatesBrowsers(t *testing.T) {
	lats := []time.Duration{50 * time.Millisecond, 300 * time.Millisecond}
	pts, err := LatencySweep(RUBiS, core.AsyncUpdates, lats, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Remote browsers stay near-local even when the WAN gets 6x slower.
	for _, pt := range pts {
		if pt.RemoteBrowser > pt.LocalBrowser+40*time.Millisecond {
			t.Fatalf("remote browser %v not insulated at %.0fms WAN", pt.RemoteBrowser, pt.X)
		}
	}
	// Writers still cross the WAN once, so they do feel the latency.
	if pts[1].RemoteWriter <= pts[0].RemoteWriter {
		t.Fatalf("remote writer insensitive to WAN latency: %v", pts)
	}
}

func TestLoadSweepQueueingGrowsWithLoad(t *testing.T) {
	pts, err := LoadSweep(PetStore, core.Centralized, []float64{0.5, 1, 3}, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].X != 15 || pts[1].X != 30 || pts[2].X != 90 {
		t.Fatalf("x values = %v", pts)
	}
	// Response times are monotone nondecreasing in load (CPU queueing),
	// and 3x load on a single server must cost measurably more.
	if pts[2].LocalBrowser <= pts[0].LocalBrowser {
		t.Fatalf("no queueing effect: %v", pts)
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := LatencySweep(PetStore, core.Centralized, []time.Duration{0}, sweepOpts()); err == nil {
		t.Fatal("zero latency accepted")
	}
	if _, err := LoadSweep(PetStore, core.Centralized, []float64{-1}, sweepOpts()); err == nil {
		t.Fatal("negative scale accepted")
	}
	if _, err := runWith("nope", core.Centralized, sweepOpts(), simnet.TopologyParams{}, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestFormatSweep(t *testing.T) {
	pts := []SweepPoint{{X: 100, LocalBrowser: time.Millisecond, RemoteBrowser: 2 * time.Millisecond}}
	s := FormatSweep("wan-ms", pts)
	if len(s) == 0 {
		t.Fatal("empty sweep format")
	}
}

func TestWriteCSV(t *testing.T) {
	ps, _ := tables(t)
	var buf strings.Builder
	if err := WriteCSV(&buf, ps); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 5 configs x 14 Pet Store cells.
	if len(lines) != 1+5*14 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "app,config,pattern,page") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(buf.String(), "petstore,centralized,Browser,Main") {
		t.Fatal("missing expected row")
	}
	var fig strings.Builder
	if err := WriteFigureCSV(&fig, ps); err != nil {
		t.Fatal(err)
	}
	// Header + 2 localities x 2 patterns x 5 configs.
	figLines := strings.Split(strings.TrimSpace(fig.String()), "\n")
	if len(figLines) != 1+20 {
		t.Fatalf("figure csv lines = %d", len(figLines))
	}
}
