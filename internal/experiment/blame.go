package experiment

// Critical-path blame reporting: the mechanical version of the paper's
// Section 5 explanations. For every configuration the tracer decomposed each
// sampled page view's latency into WAN wait, service time, queueing and
// retry/backoff; this file renders those aggregates as tables —
// per-(pattern, locality) summary rows in FormatBlame, and the per-page
// detail of one configuration in FormatBlamePages.

import (
	"fmt"
	"strings"
	"time"

	"wadeploy/internal/trace"
)

// blameRow is one aggregated (pattern, locality) line of the blame table.
type blameRow struct {
	pattern string
	local   bool
	views   int64
	total   time.Duration
	byCause [4]time.Duration
	links   map[string]time.Duration
}

// blameRows folds a report's per-page aggregates into (pattern, locality)
// rows, ordered pattern ascending with Local before Remote (the table-6 row
// order).
func blameRows(rep *TraceReport) []*blameRow {
	index := make(map[string]*blameRow)
	var rows []*blameRow
	for _, e := range rep.Blame.Pages() {
		id := e.Key.Pattern + "|" + map[bool]string{true: "l", false: "r"}[e.Key.Local]
		row := index[id]
		if row == nil {
			row = &blameRow{pattern: e.Key.Pattern, local: e.Key.Local, links: make(map[string]time.Duration)}
			index[id] = row
			rows = append(rows, row)
		}
		row.views += e.Agg.Count
		row.total += e.Agg.Total
		for c := 0; c < len(row.byCause); c++ {
			row.byCause[c] += e.Agg.ByCause[c]
		}
		for link, d := range e.Agg.Links {
			row.links[link] += d
		}
	}
	// Pages() iterates pattern-ascending with remote first; re-order each
	// pattern's pair to Local before Remote.
	for i := 1; i < len(rows); i++ {
		if rows[i].pattern == rows[i-1].pattern && rows[i].local && !rows[i-1].local {
			rows[i], rows[i-1] = rows[i-1], rows[i]
		}
	}
	return rows
}

// topLink returns the network edge carrying the most critical-path time.
func topLink(links map[string]time.Duration) string {
	var best string
	var bestD time.Duration
	for link, d := range links {
		if d > bestD || (d == bestD && (best == "" || link < best)) {
			best, bestD = link, d
		}
	}
	if best == "" {
		return "-"
	}
	return best
}

// pct renders part as an integer percentage of whole.
func pct(part, whole time.Duration) string {
	if whole <= 0 {
		return "0"
	}
	return fmt.Sprintf("%d", (100*part+whole/2)/whole)
}

// FormatBlame renders the per-configuration critical-path blame table: for
// each (pattern, locality) class, mean sampled page latency and its split
// across the four causes, plus the busiest network edge.
func FormatBlame(results []*Result) string {
	if len(results) == 0 {
		return "(no results)\n"
	}
	var b strings.Builder
	title := "Critical-path blame per sampled page view: Pet Store configurations."
	if results[0].App == RUBiS {
		title = "Critical-path blame per sampled page view: RUBiS configurations."
	}
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-22s %-6s %-8s %7s %6s %5s %5s %5s %5s  %s\n",
		"Configuration", "Client", "Pattern", "views", "ms", "svc%", "wan%", "que%", "rty%", "top link")
	fmt.Fprintln(&b, strings.Repeat("-", 96))
	for _, r := range results {
		if r.Trace == nil {
			continue
		}
		name := r.Config.Title()
		for _, row := range blameRows(r.Trace) {
			loc := "Remote"
			if row.local {
				loc = "Local"
			}
			var mean time.Duration
			if row.views > 0 {
				mean = row.total / time.Duration(row.views)
			}
			fmt.Fprintf(&b, "%-22s %-6s %-8s %7d %6s %5s %5s %5s %5s  %s\n",
				name, loc, row.pattern, row.views, ms(mean),
				pct(row.byCause[trace.CauseService], row.total),
				pct(row.byCause[trace.CauseWAN], row.total),
				pct(row.byCause[trace.CauseQueue], row.total),
				pct(row.byCause[trace.CauseRetry], row.total),
				topLink(row.links))
			name = ""
		}
	}
	return b.String()
}

// FormatBlamePages renders one configuration's per-page blame detail.
func FormatBlamePages(r *Result) string {
	if r.Trace == nil {
		return "(no trace data)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Per-page critical-path blame: %s/%s.\n", r.App, r.Config.Title())
	fmt.Fprintf(&b, "%-8s %-14s %-6s %7s %6s %5s %5s %5s %5s %8s  %s\n",
		"Pattern", "Page", "Client", "views", "ms", "svc%", "wan%", "que%", "rty%", "async", "top link")
	fmt.Fprintln(&b, strings.Repeat("-", 104))
	for _, e := range r.Trace.Blame.Pages() {
		loc := "Remote"
		if e.Key.Local {
			loc = "Local"
		}
		var mean, asyncMean time.Duration
		if e.Agg.Count > 0 {
			mean = e.Agg.Total / time.Duration(e.Agg.Count)
			asyncMean = e.Agg.Async / time.Duration(e.Agg.Count)
		}
		fmt.Fprintf(&b, "%-8s %-14s %-6s %7d %6s %5s %5s %5s %5s %8s  %s\n",
			e.Key.Pattern, e.Key.Page, loc, e.Agg.Count, ms(mean),
			pct(e.Agg.ByCause[trace.CauseService], e.Agg.Total),
			pct(e.Agg.ByCause[trace.CauseWAN], e.Agg.Total),
			pct(e.Agg.ByCause[trace.CauseQueue], e.Agg.Total),
			pct(e.Agg.ByCause[trace.CauseRetry], e.Agg.Total),
			ms(asyncMean)+"ms", topLink(e.Agg.Links))
	}
	return b.String()
}
