package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wadeploy/internal/core"
	"wadeploy/internal/metrics"
	"wadeploy/internal/petstore"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenResults is a tiny synthetic two-configuration run with hand-picked
// values, so each formatter's exact layout is pinned.
func goldenResults() []*Result {
	mk := func(cfg core.ConfigID, localMS, remoteMS int) *Result {
		r := &Result{
			App:    PetStore,
			Config: cfg,
			SessionMeans: map[string]map[bool]time.Duration{
				petstore.PatternBrowser: {
					true:  time.Duration(localMS) * time.Millisecond,
					false: time.Duration(remoteMS) * time.Millisecond,
				},
				petstore.PatternBuyer: {
					true:  time.Duration(localMS+5) * time.Millisecond,
					false: time.Duration(remoteMS+5) * time.Millisecond,
				},
			},
			Samples:      1000,
			Errors:       0,
			RemoteCalls:  int64(remoteMS) * 10,
			MainCPUUtil:  0.421,
			EdgeCPUUtil:  0.137,
			JMSPublished: 12,
			JMSDelivered: 24,
		}
		for _, page := range []string{"Main", "Category"} {
			r.Cells = append(r.Cells, PageCell{
				Pattern:   petstore.PatternBrowser,
				Page:      page,
				Local:     time.Duration(localMS) * time.Millisecond,
				Remote:    time.Duration(remoteMS) * time.Millisecond,
				LocalP95:  time.Duration(localMS*2) * time.Millisecond,
				RemoteP95: time.Duration(remoteMS*2) * time.Millisecond,
			})
		}
		return r
	}
	results := []*Result{
		mk(core.Centralized, 20, 440),
		mk(core.RemoteFacade, 21, 230),
	}
	results[0].Metrics = &metrics.Snapshot{
		Counters: []metrics.CounterSnapshot{
			{Name: "rmi_remote_calls_total", Value: 4400},
			{Name: `web_requests_total{server="main"}`, Value: 999}, // labeled: omitted
		},
		Histograms: []metrics.HistogramSnapshot{
			{Name: "rmi_remote_call_ns", Count: 10, SumNs: int64(2 * time.Second)},
		},
	}
	results[1].Metrics = &metrics.Snapshot{
		Counters: []metrics.CounterSnapshot{
			{Name: "rmi_remote_calls_total", Value: 2300},
			{Name: "container_querycache_hits_total", Value: 50},
		},
	}
	return results
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file when the -update flag is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s output changed (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestFormatTableGolden(t *testing.T) {
	checkGolden(t, "format_table", FormatTable(goldenResults()))
}

func TestFormatTableP95Golden(t *testing.T) {
	checkGolden(t, "format_table_p95", FormatTableP95(goldenResults()))
}

func TestFormatFigureGolden(t *testing.T) {
	checkGolden(t, "format_figure", FormatFigure(goldenResults()))
}

func TestFormatDiagnosticsGolden(t *testing.T) {
	checkGolden(t, "format_diagnostics", FormatDiagnostics(goldenResults()))
}

func TestFormatMetricsComparisonGolden(t *testing.T) {
	checkGolden(t, "format_metrics_comparison", FormatMetricsComparison(goldenResults()))
}

func TestFormatEmptyResults(t *testing.T) {
	for name, got := range map[string]string{
		"FormatTable":             FormatTable(nil),
		"FormatTableP95":          FormatTableP95(nil),
		"FormatFigure":            FormatFigure(nil),
		"FormatMetricsComparison": FormatMetricsComparison(nil),
	} {
		if got != "(no results)\n" {
			t.Errorf("%s(nil) = %q, want \"(no results)\\n\"", name, got)
		}
	}
}
