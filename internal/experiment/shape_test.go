package experiment

import (
	"sync"
	"testing"
	"time"

	"wadeploy/internal/core"
	"wadeploy/internal/petstore"
	"wadeploy/internal/rubis"
)

// Full table runs are shared across shape tests.
var (
	tblOnce sync.Once
	psTable []*Result
	rbTable []*Result
	tblErr  error
)

func tables(t *testing.T) ([]*Result, []*Result) {
	t.Helper()
	tblOnce.Do(func() {
		psTable, tblErr = RunTable(PetStore, QuickRunOptions())
		if tblErr != nil {
			return
		}
		rbTable, tblErr = RunTable(RUBiS, QuickRunOptions())
	})
	if tblErr != nil {
		t.Fatal(tblErr)
	}
	return psTable, rbTable
}

func byConfig(results []*Result, cfg core.ConfigID) *Result {
	for _, r := range results {
		if r.Config == cfg {
			return r
		}
	}
	return nil
}

func TestRunsProduceAllCellsWithoutErrors(t *testing.T) {
	ps, rb := tables(t)
	for _, set := range [][]*Result{ps, rb} {
		for _, r := range set {
			if r.Errors != 0 {
				t.Errorf("%s/%s: %d request errors", r.App, r.Config, r.Errors)
			}
			if r.Samples < 1000 {
				t.Errorf("%s/%s: only %d samples", r.App, r.Config, r.Samples)
			}
			for _, c := range r.Cells {
				if c.Local == 0 || c.Remote == 0 {
					t.Errorf("%s/%s: empty cell %s/%s", r.App, r.Config, c.Pattern, c.Page)
				}
			}
		}
	}
}

// Shape 1 (Section 4.1): in the centralized configuration every page pays
// roughly two extra WAN round trips (~400ms) for remote clients.
func TestShapeCentralizedRemotePenalty(t *testing.T) {
	ps, rb := tables(t)
	for _, r := range []*Result{byConfig(ps, core.Centralized), byConfig(rb, core.Centralized)} {
		for _, c := range r.Cells {
			delta := c.Remote - c.Local
			if delta < 350*time.Millisecond || delta > 480*time.Millisecond {
				t.Errorf("%s %s/%s: remote-local = %v, want ~400ms", r.App, c.Pattern, c.Page, delta)
			}
		}
	}
}

// Shape 2 (Section 4.2): the remote façade serves session-state pages
// locally for remote clients, leaves shared-state pages at ~1 RMI call, and
// VerifySignin (two RMI calls) costs about twice a one-call page.
func TestShapeRemoteFacade(t *testing.T) {
	ps, _ := tables(t)
	r := byConfig(ps, core.RemoteFacade)
	for _, page := range []string{petstore.PageSignin, petstore.PageCheckout, petstore.PagePlaceOrder, petstore.PageBilling, petstore.PageSignout} {
		if m := r.Mean(petstore.PatternBuyer, page, false); m > 200*time.Millisecond {
			t.Errorf("remote %s = %v, want session-local", page, m)
		}
	}
	if m := r.Mean(petstore.PatternBrowser, petstore.PageMain, false); m > 200*time.Millisecond {
		t.Errorf("remote Main = %v, want local", m)
	}
	cat := r.Mean(petstore.PatternBrowser, petstore.PageCategory, false)
	if cat < 250*time.Millisecond || cat > 550*time.Millisecond {
		t.Errorf("remote Category = %v, want ~1 RMI call", cat)
	}
	verif := r.Mean(petstore.PatternBuyer, petstore.PageVerifySignin, false)
	if verif < cat+200*time.Millisecond {
		t.Errorf("remote VerifySignin = %v vs Category %v, want ~2 RMI calls", verif, cat)
	}
	// Centralized remote clients were strictly worse on shared pages.
	centr := byConfig(ps, core.Centralized)
	if c0 := centr.Mean(petstore.PatternBrowser, petstore.PageCategory, false); cat >= c0 {
		t.Errorf("façade Category remote %v not better than centralized %v", cat, c0)
	}
}

// Shape 3 (Section 4.3): read-only beans make Item-style pages local
// everywhere, while write pages get significantly worse because writers
// block while pushes cross the WAN; the RUBiS bidder average increases.
func TestShapeStatefulCaching(t *testing.T) {
	ps, rb := tables(t)
	sc, rf := byConfig(ps, core.StatefulCaching), byConfig(ps, core.RemoteFacade)
	if m := sc.Mean(petstore.PatternBrowser, petstore.PageItem, false); m > 200*time.Millisecond {
		t.Errorf("remote Item = %v, want local (read-only beans)", m)
	}
	if m := sc.Mean(petstore.PatternBuyer, petstore.PageCart, false); m > 250*time.Millisecond {
		t.Errorf("remote Cart = %v, want local (read-only beans)", m)
	}
	// Commit gets worse for both localities (blocking push to two edges).
	for _, local := range []bool{true, false} {
		before := rf.Mean(petstore.PatternBuyer, petstore.PageCommit, local)
		after := sc.Mean(petstore.PatternBuyer, petstore.PageCommit, local)
		if after < before+300*time.Millisecond {
			t.Errorf("Commit local=%v: %v -> %v, want blocking-push increase", local, before, after)
		}
	}
	// Category/Product (aggregate queries) still pay a remote call.
	if m := sc.Mean(petstore.PatternBrowser, petstore.PageCategory, false); m < 250*time.Millisecond {
		t.Errorf("remote Category = %v, want still remote (aggregate query)", m)
	}
	// RUBiS: the bidder's session average increases vs the façade config.
	rsc, rrf := byConfig(rb, core.StatefulCaching), byConfig(rb, core.RemoteFacade)
	if rsc.SessionMeans[rubis.PatternBidder][true] <= rrf.SessionMeans[rubis.PatternBidder][true] {
		t.Errorf("RUBiS local bidder mean %v -> %v, want increase (blocking on stores)",
			rrf.SessionMeans[rubis.PatternBidder][true], rsc.SessionMeans[rubis.PatternBidder][true])
	}
	// RUBiS Item page becomes local for remote clients.
	if m := rsc.Mean(rubis.PatternBrowser, rubis.PageItem, false); m > 150*time.Millisecond {
		t.Errorf("RUBiS remote Item = %v, want local", m)
	}
}

// Shape 4 (Section 4.4): query caching makes listing pages local at the
// edges; the Pet Store keyword Search stays remote; writers still block.
func TestShapeQueryCaching(t *testing.T) {
	ps, rb := tables(t)
	qc := byConfig(ps, core.QueryCaching)
	for _, page := range []string{petstore.PageCategory, petstore.PageProduct} {
		if m := qc.Mean(petstore.PatternBrowser, page, false); m > 200*time.Millisecond {
			t.Errorf("remote %s = %v, want cached locally", page, m)
		}
	}
	if m := qc.Mean(petstore.PatternBrowser, petstore.PageSearch, false); m < 250*time.Millisecond {
		t.Errorf("remote Search = %v, want still remote (uncached keyword query)", m)
	}
	if m := qc.Mean(petstore.PatternBuyer, petstore.PageCommit, false); m < 600*time.Millisecond {
		t.Errorf("remote Commit = %v, want still blocked on sync push", m)
	}
	// RUBiS: the remote browser becomes indistinguishable from local.
	rqc := byConfig(rb, core.QueryCaching)
	rb1 := rqc.SessionMeans[rubis.PatternBrowser][false]
	lb1 := rqc.SessionMeans[rubis.PatternBrowser][true]
	if rb1 > lb1+30*time.Millisecond {
		t.Errorf("RUBiS remote browser mean %v vs local %v, want indistinguishable", rb1, lb1)
	}
}

// Shape 5 (Section 4.5): asynchronous updates recover write performance
// without hurting the insulated remote browsers; the final configuration is
// the best overall (the Figure 7/8 ordering).
func TestShapeAsyncUpdates(t *testing.T) {
	ps, rb := tables(t)
	au, qc := byConfig(ps, core.AsyncUpdates), byConfig(ps, core.QueryCaching)
	for _, local := range []bool{true, false} {
		before := qc.Mean(petstore.PatternBuyer, petstore.PageCommit, local)
		after := au.Mean(petstore.PatternBuyer, petstore.PageCommit, local)
		if after > before-300*time.Millisecond {
			t.Errorf("Commit local=%v: %v -> %v, want async recovery", local, before, after)
		}
	}
	if m := au.Mean(petstore.PatternBrowser, petstore.PageItem, false); m > 200*time.Millisecond {
		t.Errorf("remote Item = %v after async, want still local", m)
	}
	rau, rqc := byConfig(rb, core.AsyncUpdates), byConfig(rb, core.QueryCaching)
	for _, page := range []string{rubis.PageStoreBid, rubis.PageStoreComment} {
		before := rqc.Mean(rubis.PatternBidder, page, true)
		after := rau.Mean(rubis.PatternBidder, page, true)
		if after > before-300*time.Millisecond {
			t.Errorf("RUBiS %s local: %v -> %v, want async recovery", page, before, after)
		}
	}
	// Figure ordering: async-updates has the lowest remote session means.
	for _, tc := range []struct {
		results []*Result
		pattern string
	}{
		{ps, petstore.PatternBrowser},
		{ps, petstore.PatternBuyer},
		{rb, rubis.PatternBrowser},
		{rb, rubis.PatternBidder},
	} {
		best := byConfig(tc.results, core.AsyncUpdates).SessionMeans[tc.pattern][false]
		for _, r := range tc.results {
			if r.Config == core.AsyncUpdates {
				continue
			}
			if other := r.SessionMeans[tc.pattern][false]; best > other+20*time.Millisecond {
				t.Errorf("%s remote %s: async %v worse than %s %v",
					r.App, tc.pattern, best, r.Config, other)
			}
		}
	}
}

// The JMS path must actually carry the async updates.
func TestAsyncConfigUsesJMS(t *testing.T) {
	ps, rb := tables(t)
	for _, set := range [][]*Result{ps, rb} {
		au := byConfig(set, core.AsyncUpdates)
		if au.JMSPublished == 0 || au.JMSDelivered == 0 {
			t.Errorf("%s async: jms pub=%d del=%d, want traffic", au.App, au.JMSPublished, au.JMSDelivered)
		}
		qc := byConfig(set, core.QueryCaching)
		if qc.JMSPublished != 0 {
			t.Errorf("%s sync config published %d JMS messages", qc.App, qc.JMSPublished)
		}
	}
}

func TestDeterministicTables(t *testing.T) {
	opts := RunOptions{Seed: 7, Warmup: 10 * time.Second, Duration: 60 * time.Second}
	r1, err := Run(PetStore, core.RemoteFacade, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(PetStore, core.RemoteFacade, opts)
	if err != nil {
		t.Fatal(err)
	}
	s1 := FormatTable([]*Result{r1})
	s2 := FormatTable([]*Result{r2})
	if s1 != s2 {
		t.Fatalf("nondeterministic run:\n%s\nvs\n%s", s1, s2)
	}
}

func TestFormatting(t *testing.T) {
	ps, _ := tables(t)
	tbl := FormatTable(ps)
	if len(tbl) == 0 || tbl[0] != 'T' {
		t.Fatalf("table format: %q...", tbl[:40])
	}
	fig := FormatFigure(ps)
	if len(fig) == 0 {
		t.Fatal("empty figure")
	}
	diag := FormatDiagnostics(ps)
	if len(diag) == 0 {
		t.Fatal("empty diagnostics")
	}
	if FormatTable(nil) == "" || FormatFigure(nil) == "" {
		t.Fatal("empty-input formatting broke")
	}
}

func TestRunUnknownApp(t *testing.T) {
	if _, err := Run("nope", core.Centralized, QuickRunOptions()); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// The paper kept server CPU under 40%; our calibration must too.
func TestServersNotOverloaded(t *testing.T) {
	ps, rb := tables(t)
	for _, set := range [][]*Result{ps, rb} {
		for _, r := range set {
			if r.MainCPUUtil > 0.45 {
				t.Errorf("%s/%s: main CPU %.0f%%, want < 45%%", r.App, r.Config, 100*r.MainCPUUtil)
			}
		}
	}
}

// Extension (Section 6): edge database replicas absorb the keyword Search —
// the one read that application partitioning leaves remote.
func TestShapeDBReplicationExtension(t *testing.T) {
	r, err := Run(PetStore, core.DBReplication, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m := r.Mean(petstore.PatternBrowser, petstore.PageSearch, false); m > 200*time.Millisecond {
		t.Errorf("remote Search = %v under DB replication, want local", m)
	}
	// Everything the async configuration achieved still holds.
	ps, _ := tables(t)
	au := byConfig(ps, core.AsyncUpdates)
	for _, page := range []string{petstore.PageItem, petstore.PageCategory} {
		ext := r.Mean(petstore.PatternBrowser, page, false)
		base := au.Mean(petstore.PatternBrowser, page, false)
		if ext > base+50*time.Millisecond {
			t.Errorf("%s regressed under DB replication: %v vs %v", page, ext, base)
		}
	}
	if m := r.Mean(petstore.PatternBuyer, petstore.PageCommit, false); m > 600*time.Millisecond {
		t.Errorf("remote Commit = %v, want async-level", m)
	}
	if r.Errors != 0 {
		t.Errorf("errors = %d", r.Errors)
	}
}
