package experiment

import (
	"fmt"
	"strings"
	"time"

	"wadeploy/internal/container"
	"wadeploy/internal/core"
	"wadeploy/internal/metrics"
	"wadeploy/internal/petstore"
	"wadeploy/internal/rubis"
)

// ConsistencyArm is one point on the staleness-latency spectrum: a name and
// the replication options that pin the whole deployment to that point.
// A nil Replication is the paper's asynchronous-updates baseline.
type ConsistencyArm struct {
	Name        string
	Replication *core.ReplicationOptions
}

// ConsistencyArms is the spectrum swept by RunConsistency, ordered from
// strongest to weakest consistency: synchronous full-state pushes (the
// paper's sync path), synchronous deltas, bounded-staleness leases at three
// budgets, batched asynchronous deltas, and the paper's plain asynchronous
// updates.
func ConsistencyArms() []ConsistencyArm {
	lease := func(d time.Duration) *core.ReplicationOptions {
		return &core.ReplicationOptions{
			Mode:            container.LeaseUpdate,
			MaxStaleness:    d,
			DeltasByDefault: true,
		}
	}
	return []ConsistencyArm{
		{Name: "sync", Replication: &core.ReplicationOptions{Mode: container.SyncUpdate}},
		{Name: "sync-delta", Replication: &core.ReplicationOptions{Mode: container.SyncUpdate, DeltasByDefault: true}},
		{Name: "lease-250ms", Replication: lease(250 * time.Millisecond)},
		{Name: "lease-1s", Replication: lease(time.Second)},
		{Name: "lease-5s", Replication: lease(5 * time.Second)},
		{Name: "async-batched-250ms", Replication: &core.ReplicationOptions{
			Mode:            container.AsyncUpdate,
			BatchWindow:     250 * time.Millisecond,
			DeltasByDefault: true,
		}},
		{Name: "async", Replication: nil},
	}
}

// ConsistencyResult is one arm's measured point: the write-page response
// times the clients saw, the replica staleness the pushes delivered, and the
// WAN message cost per committed write.
type ConsistencyResult struct {
	App AppID
	Arm ConsistencyArm

	// Write-page (PetStore Buyer/Commit, RUBiS Bidder/StoreBid) mean
	// response times by client locality.
	Pattern     string
	Page        string
	WriteLocal  time.Duration
	WriteRemote time.Duration

	// Replica staleness (commit to replica apply) over every push the run
	// delivered; zero Samples means the arm produced no staleness data.
	StaleSamples int64
	StaleMean    time.Duration
	StaleP95     time.Duration
	StaleMax     time.Duration

	// WAN propagation cost: messages (sync pushes + async publishes +
	// batched flush messages) per committed entity write.
	Commits int64
	Msgs    int64

	// Full is the underlying run (all cells, metrics snapshot).
	Full *Result
}

// MsgsPerCommit returns Msgs/Commits, or 0 when nothing committed.
func (r *ConsistencyResult) MsgsPerCommit() float64 {
	if r.Commits == 0 {
		return 0
	}
	return float64(r.Msgs) / float64(r.Commits)
}

// snapCounter returns a counter's value from a registry snapshot (0 when the
// counter was never registered — lazily registered families stay absent on
// arms that do not arm them).
func snapCounter(s *metrics.Snapshot, name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// snapHistogram returns a histogram snapshot by name, or nil.
func snapHistogram(s *metrics.Snapshot, name string) *metrics.HistogramSnapshot {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// RunConsistency sweeps the staleness-latency spectrum: the application's
// asynchronous-updates configuration re-run once per arm with the
// replication override pinning every replica to that arm's propagation mode.
// Each arm is an independent seeded simulation, so any Parallelism yields
// byte-identical results.
func RunConsistency(app AppID, opts RunOptions) ([]*ConsistencyResult, error) {
	arms := ConsistencyArms()
	pattern, page := petstore.PatternBuyer, petstore.PageCommit
	if app == RUBiS {
		pattern, page = rubis.PatternBidder, rubis.PageStoreBid
	}
	out := make([]*ConsistencyResult, len(arms))
	err := forEachParallel(opts.Parallelism, len(arms), func(i int) error {
		ropts := opts
		ropts.Replication = arms[i].Replication
		full, err := Run(app, core.AsyncUpdates, ropts)
		if err != nil {
			return fmt.Errorf("arm %s: %w", arms[i].Name, err)
		}
		cr := &ConsistencyResult{
			App:         app,
			Arm:         arms[i],
			Pattern:     pattern,
			Page:        page,
			WriteLocal:  full.Mean(pattern, page, true),
			WriteRemote: full.Mean(pattern, page, false),
			Commits:     snapCounter(full.Metrics, "container_ejb_store_total"),
			Full:        full,
		}
		cr.Msgs = snapCounter(full.Metrics, "container_sync_pushes_total") +
			snapCounter(full.Metrics, "container_async_publishes_total") +
			snapCounter(full.Metrics, "push_batch_messages_total")
		if h := snapHistogram(full.Metrics, "container_replica_staleness_ns"); h != nil && h.Count > 0 {
			cr.StaleSamples = h.Count
			cr.StaleMean = time.Duration(h.SumNs / h.Count)
			cr.StaleP95 = time.Duration(h.P95Ns)
			cr.StaleMax = time.Duration(h.MaxNs)
		}
		out[i] = cr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatConsistency renders the staleness-latency table: one row per arm,
// write-page response times against delivered replica staleness and WAN
// messages per commit.
func FormatConsistency(results []*ConsistencyResult) string {
	if len(results) == 0 {
		return "(no results)\n"
	}
	r0 := results[0]
	var b strings.Builder
	fmt.Fprintf(&b, "Consistency spectrum: %s, write page %s/%s (ms).\n",
		r0.App, r0.Pattern, short(r0.Page))
	fmt.Fprintf(&b, "%-20s %9s %10s %11s %10s %10s %12s\n",
		"Arm", "write-loc", "write-rem", "stale-mean", "stale-p95", "stale-max", "msgs/commit")
	fmt.Fprintln(&b, strings.Repeat("-", 88))
	for _, r := range results {
		stale := [3]string{"-", "-", "-"}
		if r.StaleSamples > 0 {
			stale = [3]string{ms(r.StaleMean), ms(r.StaleP95), ms(r.StaleMax)}
		}
		fmt.Fprintf(&b, "%-20s %9s %10s %11s %10s %10s %12.2f\n",
			r.Arm.Name, ms(r.WriteLocal), ms(r.WriteRemote),
			stale[0], stale[1], stale[2], r.MsgsPerCommit())
	}
	return b.String()
}
