package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wadeploy/internal/core"
	"wadeploy/internal/faults"
	"wadeploy/internal/simnet"
	"wadeploy/internal/workload"
)

// PageAvail is one page's availability figures on the partitioned edge
// during the scored outage window: request counts by outcome and the mean
// response time of the successful requests.
type PageAvail struct {
	Pattern string
	Page    string
	OK      int
	Fail    int
	MeanOK  time.Duration
}

// SuccessRate returns OK/(OK+Fail), or 1 when the page saw no traffic.
func (p PageAvail) SuccessRate() float64 {
	if p.OK+p.Fail == 0 {
		return 1
	}
	return float64(p.OK) / float64(p.OK+p.Fail)
}

// AvailabilityResult is one configuration's row of the availability table:
// what the clients collocated with the partitioned edge server experienced
// while their WAN uplink was down.
type AvailabilityResult struct {
	App    AppID
	Config core.ConfigID

	// Node is the scored client node; Window is the scored interval of
	// virtual time (both taken from the fault schedule).
	Node   string
	Window [2]time.Duration

	// Pages is sorted by (pattern, page) for deterministic output.
	Pages []PageAvail

	// Aggregates over Pages, split by usage pattern: the browse pattern
	// is the first of the app's patterns (Browser), writes are the rest
	// (Buyer/Bidder).
	BrowseOK, BrowseFail int
	WriteOK, WriteFail   int

	// Full is the underlying table run result (response times, metrics
	// snapshot) for the same configuration.
	Full *Result
}

// BrowseSuccessRate returns the fraction of browse-pattern requests that
// succeeded inside the window (1 when there was no traffic).
func (r *AvailabilityResult) BrowseSuccessRate() float64 {
	if r.BrowseOK+r.BrowseFail == 0 {
		return 1
	}
	return float64(r.BrowseOK) / float64(r.BrowseOK+r.BrowseFail)
}

// WriteSuccessRate returns the fraction of write-pattern requests that
// succeeded inside the window (1 when there was no traffic).
func (r *AvailabilityResult) WriteSuccessRate() float64 {
	if r.WriteOK+r.WriteFail == 0 {
		return 1
	}
	return float64(r.WriteOK) / float64(r.WriteOK+r.WriteFail)
}

// availAccum accumulates observer callbacks for one run. Client processes
// run one at a time in the discrete-event engine, so plain fields suffice.
type availAccum struct {
	node   string
	window [2]time.Duration
	ok     map[workload.SeriesKey]int
	fail   map[workload.SeriesKey]int
	sumOK  map[workload.SeriesKey]time.Duration
}

func newAvailAccum(node string, window [2]time.Duration) *availAccum {
	return &availAccum{
		node:   node,
		window: window,
		ok:     make(map[workload.SeriesKey]int),
		fail:   make(map[workload.SeriesKey]int),
		sumOK:  make(map[workload.SeriesKey]time.Duration),
	}
}

func (a *availAccum) observe(now time.Duration, client workload.Client, key workload.SeriesKey, rt time.Duration, err error) {
	if client.Node != a.node || now < a.window[0] || now >= a.window[1] {
		return
	}
	if err != nil {
		a.fail[key]++
		return
	}
	a.ok[key]++
	a.sumOK[key] += rt
}

func (a *availAccum) pages() []PageAvail {
	keys := make([]workload.SeriesKey, 0, len(a.ok)+len(a.fail))
	seen := make(map[workload.SeriesKey]bool)
	for k := range a.ok {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range a.fail {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pattern != keys[j].Pattern {
			return keys[i].Pattern < keys[j].Pattern
		}
		return keys[i].Page < keys[j].Page
	})
	out := make([]PageAvail, 0, len(keys))
	for _, k := range keys {
		p := PageAvail{Pattern: k.Pattern, Page: k.Page, OK: a.ok[k], Fail: a.fail[k]}
		if p.OK > 0 {
			p.MeanOK = a.sumOK[k] / time.Duration(p.OK)
		}
		out = append(out, p)
	}
	return out
}

// RunAvailability runs the availability experiment: all five configurations
// under a WAN fault schedule (the canonical outage when opts.Schedule is
// nil), with the resilience machinery enabled (DefaultResilience when
// opts.Resilience is nil), scoring the per-page success rates and response
// times that the clients on the partitioned edge see inside the schedule's
// outage window. Runs are deterministic: the same seed yields byte-identical
// results at any Parallelism.
func RunAvailability(app AppID, opts RunOptions) ([]*AvailabilityResult, error) {
	if opts.Schedule == nil {
		opts.Schedule = faults.Canonical(opts.Warmup, opts.Duration)
	}
	if opts.Resilience == nil {
		opts.Resilience = core.DefaultResilience()
	}
	window := opts.Schedule.Window
	if window == [2]time.Duration{} {
		window = [2]time.Duration{opts.Warmup, opts.Warmup + opts.Duration}
	}
	node := simnet.NodeClientsEdge1

	patterns := petStorePatterns
	if app == RUBiS {
		patterns = rubisPatterns
	}
	browsePattern := patterns[0]

	out := make([]*AvailabilityResult, len(core.Configs))
	err := forEachParallel(opts.Parallelism, len(core.Configs), func(i int) error {
		acc := newAvailAccum(node, window)
		ropts := opts
		ropts.Observer = acc.observe
		full, err := Run(app, core.Configs[i], ropts)
		if err != nil {
			return err
		}
		ar := &AvailabilityResult{
			App:    app,
			Config: core.Configs[i],
			Node:   node,
			Window: window,
			Pages:  acc.pages(),
			Full:   full,
		}
		for _, p := range ar.Pages {
			if p.Pattern == browsePattern {
				ar.BrowseOK += p.OK
				ar.BrowseFail += p.Fail
			} else {
				ar.WriteOK += p.OK
				ar.WriteFail += p.Fail
			}
		}
		out[i] = ar
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatAvailability renders the availability table: per-configuration
// success rates and mean response times for the partitioned edge's clients
// during the outage window, one column per page (Table 6 layout, availability
// view).
func FormatAvailability(results []*AvailabilityResult) string {
	if len(results) == 0 {
		return "(no results)\n"
	}
	var b strings.Builder
	r0 := results[0]
	fmt.Fprintf(&b, "Availability on %s during the outage window [%v, %v].\n",
		r0.Node, r0.Window[0].Round(time.Second), r0.Window[1].Round(time.Second))
	fmt.Fprintln(&b, "Per page: success% (mean ms of successful requests).")

	// Column set: union of pages across configurations, in the first
	// result's order (they coincide across configs in practice).
	type col struct{ Pattern, Page string }
	var cols []col
	seen := make(map[col]bool)
	for _, r := range results {
		for _, p := range r.Pages {
			c := col{p.Pattern, p.Page}
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
	}
	fmt.Fprintf(&b, "%-22s", "Configuration")
	for _, c := range cols {
		fmt.Fprintf(&b, " %11s", short(c.Page))
	}
	fmt.Fprintf(&b, " %8s %8s\n", "browse%", "write%")
	fmt.Fprintln(&b, strings.Repeat("-", 22+12*len(cols)+18))
	for _, r := range results {
		fmt.Fprintf(&b, "%-22s", r.Config.Title())
		for _, c := range cols {
			cell := "-"
			for _, p := range r.Pages {
				if p.Pattern == c.Pattern && p.Page == c.Page {
					cell = fmt.Sprintf("%3.0f%%(%s)", 100*p.SuccessRate(), ms(p.MeanOK))
					break
				}
			}
			fmt.Fprintf(&b, " %11s", cell)
		}
		fmt.Fprintf(&b, " %7.1f%% %7.1f%%\n", 100*r.BrowseSuccessRate(), 100*r.WriteSuccessRate())
	}
	return b.String()
}
