package experiment

import (
	"testing"

	"wadeploy/internal/core"
	"wadeploy/internal/metrics"
	"wadeploy/internal/petstore"
	"wadeploy/internal/sim"
	"wadeploy/internal/simnet"
	"wadeploy/internal/workload"
)

// browseSteps is a representative remote browser session (no writes).
func browseSteps() []workload.Step {
	return []workload.Step{
		{Page: petstore.PageMain},
		{Page: petstore.PageCategory, Params: map[string]string{"cat": petstore.CategoryID(1)}},
		{Page: petstore.PageProduct, Params: map[string]string{"product": petstore.ProductID(1, 1)}},
		{Page: petstore.PageItem, Params: map[string]string{"item": petstore.ItemID(1, 1, 1)}},
	}
}

// buyerSteps is a full purchase session, ending in order-placement writes.
func buyerSteps() []workload.Step {
	user := petstore.UserID(0)
	return []workload.Step{
		{Page: petstore.PageMain},
		{Page: petstore.PageSignin},
		{Page: petstore.PageVerifySignin, Params: map[string]string{"user": user, "password": "pw-" + user}},
		{Page: petstore.PageCart, Params: map[string]string{"item": petstore.ItemID(1, 1, 1)}},
		{Page: petstore.PageCheckout},
		{Page: petstore.PagePlaceOrder},
		{Page: petstore.PageBilling},
		{Page: petstore.PageCommit},
		{Page: petstore.PageSignout},
	}
}

// runSession deploys Pet Store under cfg, plays the warm steps silently,
// then runs the measured steps (through perStep when given, so callers can
// read counter deltas around each page). Steps run from the edge-1 client
// group; the environment's registry is returned for final assertions.
func runSession(t *testing.T, cfg core.ConfigID, warm, measured []workload.Step,
	perStep func(reg *metrics.Registry, page string, run func())) *metrics.Registry {
	t.Helper()
	env := sim.NewEnv(1)
	d, err := core.NewPaperDeployment(env, core.DefaultOptions())
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	a, err := petstore.Deploy(d, cfg)
	if err != nil {
		t.Fatalf("petstore: %v", err)
	}
	request := a.RequestFunc()
	reg := env.Metrics()
	client := workload.Client{Node: simnet.NodeClientsEdge1, ID: "invariant-client"}
	var failed error
	env.Spawn("invariants", func(p *sim.Proc) {
		for _, step := range warm {
			if _, err := request(p, client, step); err != nil {
				failed = err
				return
			}
		}
		for _, step := range measured {
			step := step
			if perStep != nil {
				perStep(reg, step.Page, func() {
					if _, err := request(p, client, step); err != nil {
						failed = err
					}
				})
				if failed != nil {
					return
				}
				continue
			}
			if _, err := request(p, client, step); err != nil {
				failed = err
				return
			}
		}
	})
	env.RunAll()
	env.Close()
	if failed != nil {
		t.Fatalf("session: %v", failed)
	}
	return reg
}

// TestInvariantRemoteFacadeOneWANCall asserts the paper's remote-façade
// design rule directly from the metrics registry: with stub caches warm,
// serving any browse page from a remote client costs at most one wide-area
// RMI call (Section 4.2's "exactly one remote call" rule).
func TestInvariantRemoteFacadeOneWANCall(t *testing.T) {
	steps := browseSteps()
	runSession(t, core.RemoteFacade, steps, steps,
		func(reg *metrics.Registry, page string, run func()) {
			before := reg.CounterValue("rmi_wide_area_calls_total")
			run()
			delta := reg.CounterValue("rmi_wide_area_calls_total") - before
			if delta > 1 {
				t.Errorf("page %s: %d wide-area RMI calls, design rule allows at most 1", page, delta)
			}
		})
}

// TestInvariantQueryCachingNoCatalogSQL asserts that query caching removes
// the catalog load from the main database: with caches warm, a remote
// browser session issues zero SQL statements against the category and
// product tables (Section 4.4).
func TestInvariantQueryCachingNoCatalogSQL(t *testing.T) {
	catKey := metrics.LabelName("sqldb_table_statements_total", "table", "category")
	prodKey := metrics.LabelName("sqldb_table_statements_total", "table", "product")
	steps := browseSteps()
	runSession(t, core.QueryCaching, steps, steps,
		func(reg *metrics.Registry, page string, run func()) {
			catBefore := reg.CounterValue(catKey)
			prodBefore := reg.CounterValue(prodKey)
			run()
			if d := reg.CounterValue(catKey) - catBefore; d != 0 {
				t.Errorf("page %s: %d category-table statements, want 0 with warm query caches", page, d)
			}
			if d := reg.CounterValue(prodKey) - prodBefore; d != 0 {
				t.Errorf("page %s: %d product-table statements, want 0 with warm query caches", page, d)
			}
		})
}

// TestInvariantAsyncUpdatesNoBlockingPushes asserts the asynchronous-updates
// rule: writers publish updates to JMS and never perform a blocking WAN
// push. The stateful-caching configuration is the contrast — the same buyer
// session there does block on synchronous pushes.
func TestInvariantAsyncUpdatesNoBlockingPushes(t *testing.T) {
	steps := buyerSteps()
	reg := runSession(t, core.AsyncUpdates, nil, steps, nil)
	if v := reg.CounterValue("container_sync_pushes_total"); v != 0 {
		t.Errorf("async-updates: %d blocking sync pushes, want 0", v)
	}
	if v := reg.CounterValue("container_async_publishes_total"); v == 0 {
		t.Errorf("async-updates: no async publishes recorded; buyer writes should publish updates")
	}
	if v := reg.CounterValue("jms_published_total"); v == 0 {
		t.Errorf("async-updates: jms_published_total is 0, want > 0")
	}

	contrast := runSession(t, core.StatefulCaching, nil, steps, nil)
	if v := contrast.CounterValue("container_sync_pushes_total"); v == 0 {
		t.Errorf("stateful-caching contrast: no sync pushes recorded; writes should block on WAN pushes")
	}
}
