package experiment

import (
	"testing"
	"time"

	"wadeploy/internal/core"
	"wadeploy/internal/faults"
	"wadeploy/internal/petstore"
	"wadeploy/internal/trace"
)

// blameReport builds a tiny synthetic report with hand-picked blame values,
// so the formatters' exact layout is pinned.
func blameReport() *TraceReport {
	agg := trace.NewAggregator()
	add := func(pattern, page string, local bool, svc, wan, queue time.Duration, link string) {
		t := &trace.Trace{Pattern: pattern, Page: page, Local: local}
		var b trace.PathBlame
		b.Total = svc + wan + queue
		b.ByCause[trace.CauseService] = svc
		b.ByCause[trace.CauseWAN] = wan
		b.ByCause[trace.CauseQueue] = queue
		if link != "" {
			b.Links = map[string]time.Duration{link: wan}
		}
		agg.Add(t, b)
	}
	add(petstore.PatternBrowser, petstore.PageProduct, false, 20*time.Millisecond, 120*time.Millisecond, 0, "edge-1->main")
	add(petstore.PatternBrowser, petstore.PageMain, false, 18*time.Millisecond, 0, 2*time.Millisecond, "")
	add(petstore.PatternBrowser, petstore.PageProduct, true, 22*time.Millisecond, 0, 3*time.Millisecond, "")
	add(petstore.PatternBuyer, petstore.PageCommit, false, 35*time.Millisecond, 80*time.Millisecond, 0, "edge-1->main")
	return &TraceReport{Blame: agg, Sampled: 4}
}

func blameResults() []*Result {
	return []*Result{
		{App: PetStore, Config: core.Centralized, Trace: blameReport()},
		{App: PetStore, Config: core.QueryCaching, Trace: blameReport()},
	}
}

func TestFormatBlameGolden(t *testing.T) {
	checkGolden(t, "format_blame", FormatBlame(blameResults()))
}

func TestFormatBlamePagesGolden(t *testing.T) {
	checkGolden(t, "format_blame_pages", FormatBlamePages(blameResults()[0]))
}

// traceRunOptions is a short traced run: sample every page (the run is
// small), modest recorder.
func traceRunOptions() RunOptions {
	return RunOptions{
		Seed:     1,
		Warmup:   20 * time.Second,
		Duration: 2 * time.Minute,
		Trace:    &trace.Options{SampleEvery: 1, MaxTraces: 64},
	}
}

// causeShares sums a run's blame for (pattern, locality) and returns the
// service and WAN fractions of the critical path.
func causeShares(t *testing.T, r *Result, pattern string, local bool) (svc, wan float64) {
	t.Helper()
	if r.Trace == nil {
		t.Fatal("run has no trace report")
	}
	var total, svcD, wanD time.Duration
	for _, e := range r.Trace.Blame.Pages() {
		if e.Key.Pattern != pattern || e.Key.Local != local {
			continue
		}
		total += e.Agg.Total
		svcD += e.Agg.ByCause[trace.CauseService]
		wanD += e.Agg.ByCause[trace.CauseWAN]
	}
	if total == 0 {
		t.Fatalf("no blame recorded for %s local=%v", pattern, local)
	}
	return float64(svcD) / float64(total), float64(wanD) / float64(total)
}

// TestBlameReproducesPaperStory pins the paper's Section 5 explanation
// mechanically: under the centralized configuration a remote client's browse
// pages are dominated by WAN wait, while the query-caching configuration
// turns the same pages into (edge-local) service time.
func TestBlameReproducesPaperStory(t *testing.T) {
	central, err := Run(PetStore, core.Centralized, traceRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Run(PetStore, core.QueryCaching, traceRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, wanCentral := causeShares(t, central, petstore.PatternBrowser, false)
	if wanCentral <= 0.5 {
		t.Errorf("centralized remote browse: WAN share %.2f, want > 0.5", wanCentral)
	}
	svcCached, wanCached := causeShares(t, cached, petstore.PatternBrowser, false)
	if svcCached <= 0.5 {
		t.Errorf("query-caching remote browse: service share %.2f, want > 0.5", svcCached)
	}
	if wanCached >= wanCentral {
		t.Errorf("query caching did not cut WAN blame: %.2f -> %.2f", wanCentral, wanCached)
	}
	// Local clients never cross the wide area in either configuration.
	_, wanLocal := causeShares(t, central, petstore.PatternBrowser, true)
	if wanLocal != 0 {
		t.Errorf("centralized local browse has WAN blame %.2f, want 0", wanLocal)
	}
}

// traceFingerprint renders everything `wadeploy trace` prints for a run:
// the blame tables plus every recorded span tree.
func traceFingerprint(results []*Result) string {
	out := FormatBlame(results)
	for _, r := range results {
		if r.Trace == nil {
			continue
		}
		out += FormatBlamePages(r)
		for _, tr := range r.Trace.Traces {
			out += trace.Format(tr)
		}
	}
	return out
}

// TestTraceParallelByteIdentity pins satellite 3: `wadeploy trace` output is
// byte-identical across -parallel 1 and 8, clean and under the canonical
// fault schedule — and tracing leaves Table 6 itself untouched.
func TestTraceParallelByteIdentity(t *testing.T) {
	for _, faulted := range []bool{false, true} {
		opts := traceRunOptions()
		if faulted {
			opts.Schedule = faults.Canonical(opts.Warmup, opts.Duration)
			opts.Resilience = core.DefaultResilience()
		}
		opts.Parallelism = 1
		seq, err := RunTable(PetStore, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Parallelism = 8
		par, err := RunTable(PetStore, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := traceFingerprint(seq), traceFingerprint(par); a != b {
			t.Errorf("faulted=%v: trace output differs between -parallel 1 and 8", faulted)
		}
		if a, b := FormatTable(seq), FormatTable(par); a != b {
			t.Errorf("faulted=%v: Table 6 differs between -parallel 1 and 8", faulted)
		}

		// Tracing must not perturb the measured tables: the same run
		// without a tracer yields a byte-identical Table 6.
		plain := opts
		plain.Trace = nil
		plainRes, err := RunTable(PetStore, plain)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := FormatTable(plainRes), FormatTable(par); a != b {
			t.Errorf("faulted=%v: tracing changed Table 6 output", faulted)
		}
	}
}
