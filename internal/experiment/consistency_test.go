package experiment

import (
	"testing"
	"time"
)

// consQuickOptions keeps the spectrum sweep CI-sized: seven arms, each a
// full seeded simulation, long enough that buyer sessions reach the commit
// page and every arm observes writes.
func consQuickOptions(parallelism int) RunOptions {
	return RunOptions{
		Seed:        1,
		Warmup:      30 * time.Second,
		Duration:    3 * time.Minute,
		Parallelism: parallelism,
	}
}

// TestConsistencyDeterminism: every arm owns its environment and seed, so
// the formatted spectrum table must be byte-identical whether the arms run
// sequentially or eight-wide. This is the same two-book determinism
// discipline the paper tables are held to.
func TestConsistencyDeterminism(t *testing.T) {
	seq, err := RunConsistency(PetStore, consQuickOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunConsistency(PetStore, consQuickOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	a, b := FormatConsistency(seq), FormatConsistency(par)
	if a != b {
		t.Fatalf("spectrum not deterministic across parallelism:\n-- sequential --\n%s\n-- parallel --\n%s", a, b)
	}
}

// TestConsistencySpectrumInvariants pins the spectrum's shape on the
// PetStore commit page: leases trade staleness for write latency, batching
// trades staleness for WAN messages.
func TestConsistencySpectrumInvariants(t *testing.T) {
	results, err := RunConsistency(PetStore, consQuickOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	arms := ConsistencyArms()
	if len(results) != len(arms) {
		t.Fatalf("got %d results for %d arms", len(results), len(arms))
	}
	byArm := make(map[string]*ConsistencyResult, len(results))
	for i, r := range results {
		if r.Arm.Name != arms[i].Name {
			t.Fatalf("result %d is arm %q, want %q (order must match ConsistencyArms)", i, r.Arm.Name, arms[i].Name)
		}
		byArm[r.Arm.Name] = r
	}

	sync, lease, batched, async := byArm["sync"], byArm["lease-1s"], byArm["async-batched-250ms"], byArm["async"]
	if sync.Commits == 0 || async.Commits == 0 {
		t.Fatal("no commits observed; the write page did not run")
	}
	// Leases decouple the writer from the WAN round-trip.
	if lease.WriteRemote >= sync.WriteRemote {
		t.Errorf("lease remote write %v not below sync %v", lease.WriteRemote, sync.WriteRemote)
	}
	// The lease arms are the ones paying measured staleness for it.
	if lease.StaleSamples == 0 {
		t.Error("lease arm observed no staleness samples")
	}
	if s250, s5 := byArm["lease-250ms"], byArm["lease-5s"]; s250.StaleSamples > 0 && s5.StaleSamples > 0 &&
		s5.StaleMean <= s250.StaleMean {
		t.Errorf("staleness did not grow with the budget: 5s arm %v <= 250ms arm %v", s5.StaleMean, s250.StaleMean)
	}
	// Batching coalesces pushes: strictly fewer WAN messages per commit
	// than the unbatched async baseline.
	if batched.MsgsPerCommit() >= async.MsgsPerCommit() {
		t.Errorf("batched arm %.3f msgs/commit not below async %.3f",
			batched.MsgsPerCommit(), async.MsgsPerCommit())
	}
}
