package experiment

import (
	"encoding/csv"
	"io"
	"strconv"
	"time"
)

// WriteCSV emits one row per (configuration, pattern, page) with mean and
// p95 response times in milliseconds for both localities — a
// plotting-friendly long format.
func WriteCSV(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)
	header := []string{
		"app", "config", "pattern", "page",
		"local_mean_ms", "remote_mean_ms", "local_p95_ms", "remote_p95_ms",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	msf := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 1, 64)
	}
	for _, r := range results {
		for _, c := range r.Cells {
			row := []string{
				string(r.App), r.Config.String(), c.Pattern, c.Page,
				msf(c.Local), msf(c.Remote), msf(c.LocalP95), msf(c.RemoteP95),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigureCSV emits the Figure 7/8 bars: one row per (configuration,
// pattern, locality) session mean.
func WriteFigureCSV(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "config", "pattern", "locality", "session_mean_ms"}); err != nil {
		return err
	}
	for _, bar := range Figure(results) {
		loc := "remote"
		if bar.Local {
			loc = "local"
		}
		app := ""
		if len(results) > 0 {
			app = string(results[0].App)
		}
		row := []string{
			app, bar.Config.String(), bar.Pattern, loc,
			strconv.FormatFloat(float64(bar.Mean)/float64(time.Millisecond), 'f', 1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
