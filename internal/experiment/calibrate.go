package experiment

// Calibration reference
//
// Every absolute number in the regenerated tables traces back to one of the
// knobs below; the *relationships* between cells (the shapes the paper
// claims) come from the system structure, not from tuning.
//
// Network (simnet.DefaultTopologyParams, Fig. 2):
//
//	WAN one-way latency   100 ms   (paper: "100 ms latency each way")
//	WAN bandwidth         100 Mbit/s combined
//	LAN one-way latency   250 µs
//	server CPUs           2 slots  (dual-processor Pentium III)
//
// HTTP (web.DefaultOptions, Section 3.3):
//
//	keep-alive            off      => TCP handshake RTT + request RTT per page
//	                                  (the centralized config's +400 ms)
//
// RMI (rmi.DefaultOptions / rubis.DeployOptions):
//
//	rounds per call       1.5      Pet Store (JBoss 2.4.4-era RMI with
//	                               ping/DGC traffic, ref [5] in the paper)
//	rounds per call       1.25     RUBiS (JBoss 3.0.3 / Jetty 4.1.0, leaner)
//	JNDI lookup           1 remote call, removed by EJBHomeFactory caching
//
// Container (container.DefaultCostModel):
//
//	business method       400 µs   tx demarcation + interceptors
//	ejbLoad/ejbStore      300 µs   field marshalling on top of SQL cost
//	cache hit             150 µs   read-only bean / query-cache read
//	JDBC                  1 round trip per statement to the DB node
//
// Database (sqldb.DefaultCostModel):
//
//	per statement         300 µs; scans 4 µs/row; writes 40 µs/row.
//	Utilization stays under ~5% in all runs (paper, Section 3.1).
//
// JMS (jms.DefaultOptions, Section 4.5):
//
//	publish               2 ms     local transactional enqueue (this is why
//	                               the async Commit costs more than a plain
//	                               write but far less than a blocking push)
//	MDB dispatch          200 µs
//
// Application page costs (petstore.DefaultPageCosts, rubis.DefaultPageCosts):
//
//	each page carries a CPU cost (creates server contention) and a non-CPU
//	latency (JSP pipeline, logging, connection handling). These are the only
//	values fitted to the paper — against the *centralized/local* row of each
//	table only. Every other cell in Tables 6-7 is model output.
//
// Changing a knob changes the tables proportionally; the shape tests in
// shape_test.go pin the qualitative structure so recalibration cannot
// silently break the reproduction.
