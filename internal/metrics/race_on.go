//go:build race

package metrics

// RaceEnabled reports whether the race detector is active; alloc-guard tests
// skip under it because instrumentation perturbs allocation counts.
const RaceEnabled = true
