package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back to the same bucket, and
	// bucket bounds must tile the value space without gaps or overlaps.
	// Bucket 1887 tops out at MaxInt64; higher indexes are unreachable.
	prev := int64(-1)
	for b := 0; b < 1888; b++ {
		hi := bucketUpper(b)
		if hi <= prev {
			t.Fatalf("bucket %d: upper %d not above previous %d", b, hi, prev)
		}
		if got := bucketIndex(hi); got != b {
			t.Fatalf("bucketIndex(bucketUpper(%d)) = %d", b, got)
		}
		if got := bucketIndex(prev + 1); got != b {
			t.Fatalf("bucketIndex(%d) = %d, want %d", prev+1, got, b)
		}
		prev = hi
	}
}

func TestBucketRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(int64(10 * time.Hour))
		lo, hi := BucketRange(time.Duration(v))
		if time.Duration(v) < lo || time.Duration(v) > hi {
			t.Fatalf("value %d outside its bucket [%d, %d]", v, lo, hi)
		}
		if v >= subBuckets {
			width := float64(hi - lo + 1)
			if width/float64(v) > 1.0/subBuckets*1.01 {
				t.Fatalf("value %d: bucket width %v exceeds %.1f%% relative error", v, width, 100.0/subBuckets)
			}
		}
	}
}

func TestHistogramExactScalars(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(50) != 0 {
		t.Fatal("zero-value histogram must read as empty")
	}
	vals := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond, 50 * time.Millisecond}
	for _, v := range vals {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 50*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 30*time.Millisecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Sum() != 150*time.Millisecond {
		t.Fatalf("Sum = %v", h.Sum())
	}
	if h.Quantile(0) != 10*time.Millisecond || h.Quantile(100) != 50*time.Millisecond {
		t.Fatalf("Quantile(0)/Quantile(100) = %v/%v", h.Quantile(0), h.Quantile(100))
	}
	// Mid-quantiles resolve to the ranked sample's bucket, at most one
	// bucket width above the exact value.
	p50 := h.Quantile(50)
	_, hi := BucketRange(30 * time.Millisecond)
	if p50 < 30*time.Millisecond || p50 > hi {
		t.Fatalf("Quantile(50) = %v, want within [30ms, %v]", p50, hi)
	}
}

func TestHistogramQuantileDriftVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	var exact []time.Duration
	for i := 0; i < 5000; i++ {
		v := time.Duration(rng.Int63n(int64(2 * time.Second)))
		h.Observe(v)
		exact = append(exact, v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{1, 10, 25, 50, 75, 90, 95, 99} {
		r := int(math.Round(q / 100 * float64(len(exact)-1)))
		want := exact[r]
		got := h.Quantile(q)
		lo, hi := BucketRange(want)
		if got < lo || got > hi {
			t.Fatalf("Quantile(%v) = %v, exact %v, outside bucket [%v, %v]", q, got, want, lo, hi)
		}
	}
}

func TestRegistryIdempotentAndKinds(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("a_total")
	if r.Counter("a_total") != c {
		t.Fatal("Counter not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering a_total as gauge should panic")
		}
	}()
	r.Gauge("a_total")
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry(nil)
	v := r.CounterVec("x_total", "table")
	v.With("product").Add(3)
	v.With("product").Inc()
	v.With("category").Inc()
	if got := r.CounterValue(`x_total{table="product"}`); got != 4 {
		t.Fatalf("product child = %d", got)
	}
	if got := r.CounterValue(LabelName("x_total", "table", "category")); got != 1 {
		t.Fatalf("category child = %d", got)
	}
	if got := r.CounterValue("missing_total"); got != 0 {
		t.Fatalf("missing counter = %d", got)
	}
}

func TestSampleAndSnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		now := time.Duration(0)
		r := NewRegistry(func() time.Duration { return now })
		c := r.Counter("b_total")
		a := r.Counter("a_total")
		g := r.Gauge("live")
		h := r.Histogram("lat_ns")
		for i := 0; i < 3; i++ {
			now = time.Duration(i+1) * time.Second
			c.Add(int64(i))
			a.Inc()
			g.Set(int64(10 - i))
			h.Observe(time.Duration(i+1) * time.Millisecond)
			r.Sample()
		}
		return r
	}
	s1, err1 := json.Marshal(build().Snapshot())
	s2, err2 := json.Marshal(build().Snapshot())
	if err1 != nil || err2 != nil {
		t.Fatalf("marshal: %v / %v", err1, err2)
	}
	if string(s1) != string(s2) {
		t.Fatalf("snapshots differ:\n%s\n%s", s1, s2)
	}
	var snap Snapshot
	if err := json.Unmarshal(s1, &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "a_total" || snap.Counters[1].Name != "b_total" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	if len(snap.Counters[0].Series) != 3 || snap.Counters[0].Series[2].T != 3*time.Second {
		t.Fatalf("series not sampled: %+v", snap.Counters[0].Series)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 3 {
		t.Fatalf("histogram snapshot: %+v", snap.Histograms)
	}
}

func TestUnsampledSeriesStayEmpty(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("a_total")
	for i := 0; i < 100; i++ {
		c.Inc()
	}
	if s := r.Snapshot(); len(s.Counters[0].Series) != 0 {
		t.Fatalf("series grew without Sample: %d points", len(s.Counters[0].Series))
	}
}

// Alloc guards: the instrument hot paths must be allocation-free in steady
// state, since they run inside the sim engine's zero-alloc event loop.
func TestInstrumentAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	r := NewRegistry(nil)
	c := r.Counter("c_total")
	g := r.Gauge("g")
	v := r.CounterVec("v_total", "k")
	h := r.Histogram("h_ns")
	// Warm: materialize the vec child and grow the histogram buckets.
	v.With("x").Inc()
	for i := 0; i < 100; i++ {
		h.Observe(123 * time.Millisecond)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { v.With("x").Inc() }); n != 0 {
		t.Fatalf("CounterVec.With(existing) allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123 * time.Millisecond) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op", n)
	}
}

// Overhead guard: these pin the per-operation cost of enabled-but-unsampled
// instruments; BenchmarkTable6_* (repo root) measures the end-to-end <2%
// budget against the recorded BENCH_*.json baselines.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry(nil).Counter("c_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry(nil).Histogram("h_ns")
	h.Observe(123 * time.Millisecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(123 * time.Millisecond)
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	v := NewRegistry(nil).CounterVec("v_total", "k")
	v.With("product").Inc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("product").Inc()
	}
}
