package metrics

import (
	"math"
	"math/bits"
	"time"
)

// The histogram is log-bucketed with subBuckets sub-buckets per octave:
// values below subBuckets get one exact bucket each; larger values land in
// the bucket addressed by their top subBits+1 significand bits, giving a
// relative error below 1/subBuckets (~3.1%) at every scale while needing at
// most ~1920 buckets to span the full int64 nanosecond range.
const (
	subBits    = 5
	subBuckets = 1 << subBits
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	e := bits.Len64(u) - 1 // 2^e <= u < 2^(e+1), e >= subBits
	top := u >> uint(e-subBits)
	return (e-subBits)*subBuckets + int(top)
}

// bucketUpper returns the largest value mapping to bucket b.
func bucketUpper(b int) int64 {
	if b < subBuckets {
		return int64(b)
	}
	e := (b-subBuckets)/subBuckets + subBits
	top := uint64(b - (e-subBits)*subBuckets)
	shift := uint(e - subBits)
	return int64(((top + 1) << shift) - 1)
}

// BucketRange returns the bounds [lo, hi] of the histogram bucket holding d:
// every value in the range is recorded indistinguishably from d. Tests use
// it to bound quantile drift to one bucket width.
func BucketRange(d time.Duration) (lo, hi time.Duration) {
	b := bucketIndex(int64(d))
	hi = time.Duration(bucketUpper(b))
	if b == 0 {
		return 0, hi
	}
	return time.Duration(bucketUpper(b-1)) + 1, hi
}

// Histogram is a log-bucketed duration histogram. The zero value is ready to
// use. Min, max, count and sum are exact; quantiles are resolved to the
// upper bound of the bucket holding the ranked sample (clamped to the exact
// min/max), so they are at most one bucket width above the true value.
type Histogram struct {
	nm      string
	count   int64
	sum     int64
	minV    int64
	maxV    int64
	buckets []int64
}

// Name returns the registered name ("" for a free-standing histogram).
func (h *Histogram) Name() string { return h.nm }

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.minV {
		h.minV = v
	}
	if h.count == 0 || v > h.maxV {
		h.maxV = v
	}
	h.count++
	h.sum += v
	b := bucketIndex(v)
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b]++
}

// Merge folds every observation of o into h. Bucket counts, count, sum and
// the exact min/max add up exactly as if each sample had been observed on h,
// so merging per-shard histograms loses nothing beyond bucket resolution.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.minV < h.minV {
		h.minV = o.minV
	}
	if h.count == 0 || o.maxV > h.maxV {
		h.maxV = o.maxV
	}
	h.count += o.count
	h.sum += o.sum
	for len(h.buckets) < len(o.buckets) {
		h.buckets = append(h.buckets, 0)
	}
	for b, c := range o.buckets {
		h.buckets[b] += c
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Min returns the exact smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.minV)
}

// Max returns the exact largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.maxV)
}

// Mean returns the exact mean (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// ValueAtRank returns the value of the r-th observation (0-based) in sorted
// order, resolved to its bucket upper bound and clamped to [Min, Max].
func (h *Histogram) ValueAtRank(r int64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if r <= 0 {
		return time.Duration(h.minV)
	}
	if r >= h.count-1 {
		return time.Duration(h.maxV)
	}
	cum := int64(0)
	for b, c := range h.buckets {
		cum += c
		if cum > r {
			v := bucketUpper(b)
			if v < h.minV {
				v = h.minV
			}
			if v > h.maxV {
				v = h.maxV
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.maxV)
}

// Quantile returns the q-th percentile (0..100) using the nearest-rank rule
// (rank = round(q/100·(n−1))). Quantile(0) and Quantile(100) are the exact
// min and max.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.minV)
	}
	if q >= 100 {
		return time.Duration(h.maxV)
	}
	r := int64(math.Round(q / 100 * float64(h.count-1)))
	return h.ValueAtRank(r)
}
