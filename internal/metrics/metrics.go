// Package metrics is a deterministic, virtual-clock-native metrics registry
// for the simulation: counters, gauges and log-bucketed latency histograms,
// with label-vector variants for per-link/per-topic/per-table series. Every
// sim.Env owns one registry; instruments are plain fields mutated by the one
// goroutine the engine runs at a time, so no instrument takes a lock and the
// hot-path operations (Add, Set, Observe) are allocation-free in steady
// state. Snapshots are sorted by name, so the same seed yields byte-identical
// exports.
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Point is one sampled value on the virtual-time axis.
type Point struct {
	T time.Duration `json:"t_ns"`
	V int64         `json:"v"`
}

// Counter is a monotonically increasing value.
type Counter struct {
	nm     string
	v      int64
	series []Point
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.nm }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds delta (negative deltas are a programming error but not checked on
// the hot path).
func (c *Counter) Add(delta int64) { c.v += delta }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a value that can move both ways.
type Gauge struct {
	nm     string
	v      int64
	series []Point
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.nm }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v = v }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// LabelName renders the registered name of a labeled child instrument,
// e.g. LabelName("sqldb_table_statements_total", "table", "product") →
// `sqldb_table_statements_total{table="product"}`.
func LabelName(name, label, value string) string {
	return name + "{" + label + `="` + value + `"}`
}

// Registry holds the instruments of one simulation environment. The zero
// value is not usable; construct with NewRegistry.
type Registry struct {
	now      func() time.Duration
	byName   map[string]any
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

// NewRegistry builds a registry reading virtual time from now (nil means a
// clock pinned at zero).
func NewRegistry(now func() time.Duration) *Registry {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Registry{now: now, byName: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name as a different instrument kind panics: the
// schema is fixed at instrumentation sites, so a clash is a programming
// error.
func (r *Registry) Counter(name string) *Counter {
	if in, ok := r.byName[name]; ok {
		c, ok := in.(*Counter)
		if !ok {
			panic(fmt.Sprintf("metrics: %s already registered as %T", name, in))
		}
		return c
	}
	c := &Counter{nm: name}
	r.byName[name] = c
	r.counters = append(r.counters, c)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if in, ok := r.byName[name]; ok {
		g, ok := in.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("metrics: %s already registered as %T", name, in))
		}
		return g
	}
	g := &Gauge{nm: name}
	r.byName[name] = g
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if in, ok := r.byName[name]; ok {
		h, ok := in.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("metrics: %s already registered as %T", name, in))
		}
		return h
	}
	h := &Histogram{nm: name}
	r.byName[name] = h
	r.hists = append(r.hists, h)
	return h
}

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct {
	r        *Registry
	nm       string
	label    string
	children map[string]*Counter
}

// CounterVec returns the counter family name{label=...}, creating it on
// first use.
func (r *Registry) CounterVec(name, label string) *CounterVec {
	key := name + "{" + label + "}"
	if in, ok := r.byName[key]; ok {
		v, ok := in.(*CounterVec)
		if !ok {
			panic(fmt.Sprintf("metrics: %s already registered as %T", key, in))
		}
		return v
	}
	v := &CounterVec{r: r, nm: name, label: label, children: make(map[string]*Counter)}
	r.byName[key] = v
	return v
}

// With returns the child counter for one label value, creating it on first
// use. Steady-state calls are a single map lookup.
func (v *CounterVec) With(value string) *Counter {
	if c, ok := v.children[value]; ok {
		return c
	}
	c := v.r.Counter(LabelName(v.nm, v.label, value))
	v.children[value] = c
	return c
}

// HistogramVec is a family of histograms keyed by one label value.
type HistogramVec struct {
	r        *Registry
	nm       string
	label    string
	children map[string]*Histogram
}

// HistogramVec returns the histogram family name{label=...}, creating it on
// first use.
func (r *Registry) HistogramVec(name, label string) *HistogramVec {
	key := name + "{" + label + "}"
	if in, ok := r.byName[key]; ok {
		v, ok := in.(*HistogramVec)
		if !ok {
			panic(fmt.Sprintf("metrics: %s already registered as %T", key, in))
		}
		return v
	}
	v := &HistogramVec{r: r, nm: name, label: label, children: make(map[string]*Histogram)}
	r.byName[key] = v
	return v
}

// With returns the child histogram for one label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	if h, ok := v.children[value]; ok {
		return h
	}
	h := v.r.Histogram(LabelName(v.nm, v.label, value))
	v.children[value] = h
	return h
}

// CounterValue reads a counter by (possibly labeled) name; absent counters
// read as 0 so tests can assert on instruments the run never touched.
func (r *Registry) CounterValue(name string) int64 {
	if in, ok := r.byName[name]; ok {
		if c, ok := in.(*Counter); ok {
			return c.Value()
		}
	}
	return 0
}

// GaugeValue reads a gauge by name (0 when absent).
func (r *Registry) GaugeValue(name string) int64 {
	if in, ok := r.byName[name]; ok {
		if g, ok := in.(*Gauge); ok {
			return g.Value()
		}
	}
	return 0
}

// FindHistogram returns the histogram registered under name, or nil.
func (r *Registry) FindHistogram(name string) *Histogram {
	if in, ok := r.byName[name]; ok {
		if h, ok := in.(*Histogram); ok {
			return h
		}
	}
	return nil
}

// Sample appends one virtual-time point to the series of every counter and
// gauge. It is driven by an explicit tick (experiment.RunOptions.MetricsTick)
// so unsampled runs never grow series memory.
func (r *Registry) Sample() {
	t := r.now()
	for _, c := range r.counters {
		c.series = append(c.series, Point{T: t, V: c.v})
	}
	for _, g := range r.gauges {
		g.series = append(g.series, Point{T: t, V: g.v})
	}
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	UpperNs int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}

// CounterSnapshot is the exported state of one counter or gauge.
type CounterSnapshot struct {
	Name   string  `json:"name"`
	Value  int64   `json:"value"`
	Series []Point `json:"series,omitempty"`
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	SumNs   int64         `json:"sum_ns"`
	MinNs   int64         `json:"min_ns"`
	MaxNs   int64         `json:"max_ns"`
	P50Ns   int64         `json:"p50_ns"`
	P95Ns   int64         `json:"p95_ns"`
	P99Ns   int64         `json:"p99_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a full, deterministic export of a registry: instruments sorted
// by name, series in sampling order. Marshaling the same snapshot twice (or
// the snapshots of two same-seed runs) yields identical bytes.
type Snapshot struct {
	CapturedNs int64               `json:"captured_ns"`
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []CounterSnapshot   `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current state of every instrument.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{CapturedNs: int64(r.now())}
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.nm, Value: c.v, Series: append([]Point(nil), c.series...)})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, CounterSnapshot{Name: g.nm, Value: g.v, Series: append([]Point(nil), g.series...)})
	}
	for _, h := range r.hists {
		hs := HistogramSnapshot{
			Name:  h.nm,
			Count: h.count,
			SumNs: h.sum,
			MinNs: int64(h.Min()),
			MaxNs: int64(h.Max()),
			P50Ns: int64(h.Quantile(50)),
			P95Ns: int64(h.Quantile(95)),
			P99Ns: int64(h.Quantile(99)),
		}
		for b, c := range h.buckets {
			if c > 0 {
				hs.Buckets = append(hs.Buckets, BucketCount{UpperNs: bucketUpper(b), Count: c})
			}
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
