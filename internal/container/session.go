package container

import (
	"fmt"

	"wadeploy/internal/jms"
	"wadeploy/internal/metrics"
	"wadeploy/internal/rmi"
	"wadeploy/internal/sim"
	"wadeploy/internal/trace"
)

// Invocation is the context passed to a session-bean business method.
type Invocation struct {
	Server  *Server
	Method  string
	Args    []any
	Caller  string
	Session string // stateful beans: the client session key
	State   State  // stateful beans: the instance's conversational state
}

// Arg returns argument i, or nil.
func (inv *Invocation) Arg(i int) any {
	if i < 0 || i >= len(inv.Args) {
		return nil
	}
	return inv.Args[i]
}

// StringArg returns argument i as a string ("" when absent or mistyped).
func (inv *Invocation) StringArg(i int) string {
	s, _ := inv.Arg(i).(string)
	return s
}

// Method is a session-bean business method. Methods run on the invoking
// process; container overhead (MethodCPU) is charged before entry.
type Method func(p *sim.Proc, inv *Invocation) (any, error)

// StatelessBean is a deployed stateless session bean: a façade component
// holding no conversational state (it may hold soft state such as query
// caches, which the EJB specification permits).
type StatelessBean struct {
	srv     *Server
	name    string
	methods map[string]Method
	calls   int64

	mCalls *metrics.Counter
}

// DeployStateless deploys a stateless session bean with the given business
// methods and binds it in the server's JNDI registry.
func DeployStateless(srv *Server, name string, methods map[string]Method) (*StatelessBean, error) {
	b := &StatelessBean{
		srv: srv, name: name, methods: methods,
		mCalls: srv.Env().Metrics().Counter("container_stateless_calls_total"),
	}
	if err := srv.bind(name, StatelessSession, b.handle); err != nil {
		return nil, err
	}
	return b, nil
}

// RedeployStateless swaps the stateless bean bound under name for one with
// the given business methods, rebinding the JNDI entry in place (or binding
// fresh when absent). This is the live-migration cut-over: the swap
// completes within the current simulation event, cached EJBHomeFactory
// stubs dispatch to the new implementation from their next call, and no
// request ever finds the name unbound.
func RedeployStateless(srv *Server, name string, methods map[string]Method) (*StatelessBean, error) {
	b := &StatelessBean{
		srv: srv, name: name, methods: methods,
		mCalls: srv.Env().Metrics().Counter("container_stateless_calls_total"),
	}
	if err := srv.rebind(name, StatelessSession, b.handle); err != nil {
		return nil, err
	}
	return b, nil
}

// Name returns the bean's deployment name.
func (b *StatelessBean) Name() string { return b.name }

// Calls returns the number of business-method invocations served.
func (b *StatelessBean) Calls() int64 { return b.calls }

func (b *StatelessBean) handle(p *sim.Proc, call *rmi.Call) (any, error) {
	m, ok := b.methods[call.Method]
	if !ok {
		return nil, fmt.Errorf("container: %s.%s: %w", b.name, call.Method, ErrNoSuchMethod)
	}
	b.calls++
	b.mCalls.Inc()
	b.srv.Compute(p, b.srv.costs.MethodCPU)
	return m(p, &Invocation{
		Server: b.srv,
		Method: call.Method,
		Args:   call.Args,
		Caller: call.Caller,
	})
}

// StatefulBean is a deployed stateful session bean: one conversational-state
// instance per client session, acting as a server-side extension of the
// client's runtime (ShoppingCart in Pet Store). Invocations carry the
// session key as their first argument.
type StatefulBean struct {
	srv       *Server
	name      string
	methods   map[string]Method
	instances map[string]State
	calls     int64

	// Session replication (the memory-to-memory stateful-session-EJB
	// replication J2EE clusters use for failover; the paper notes it is a
	// LAN-scale mechanism — enabling it across the WAN makes every
	// mutating call pay a wide-area push, which is measurable here).
	replicaServer string
	replicated    int64

	mCalls       *metrics.Counter
	mActivations *metrics.Counter
	mRepl        *metrics.Counter
}

// methodApplySession is the internal method replication peers invoke to
// install a session instance's state.
const methodApplySession = "__applySession"

// ReplicateTo enables synchronous session replication: after every business
// method, the instance's state is pushed to the same-named bean on
// buddyServer, so the session survives losing this server (clients re-route
// and resume). Pass "" to disable.
func (b *StatefulBean) ReplicateTo(buddyServer string) {
	b.replicaServer = buddyServer
}

// Replicated returns the number of session-state pushes performed.
func (b *StatefulBean) Replicated() int64 { return b.replicated }

// Resume returns whether a (possibly replicated) instance exists for the
// session key — what a failover router checks before re-homing a client.
func (b *StatefulBean) Resume(session string) bool {
	_, ok := b.instances[session]
	return ok
}

// DeployStateful deploys a stateful session bean.
func DeployStateful(srv *Server, name string, methods map[string]Method) (*StatefulBean, error) {
	reg := srv.Env().Metrics()
	b := &StatefulBean{
		srv:          srv,
		name:         name,
		methods:      methods,
		instances:    make(map[string]State),
		mCalls:       reg.Counter("container_stateful_calls_total"),
		mActivations: reg.Counter("container_stateful_activations_total"),
		mRepl:        reg.Counter("container_session_replications_total"),
	}
	if err := srv.bind(name, StatefulSession, b.handle); err != nil {
		return nil, err
	}
	return b, nil
}

// Name returns the bean's deployment name.
func (b *StatefulBean) Name() string { return b.name }

// Calls returns the number of business-method invocations served.
func (b *StatefulBean) Calls() int64 { return b.calls }

// Instances returns the number of live conversational-state instances.
func (b *StatefulBean) Instances() int { return len(b.instances) }

// Remove discards a session's instance (ejbRemove on sign-out).
func (b *StatefulBean) Remove(session string) { delete(b.instances, session) }

func (b *StatefulBean) handle(p *sim.Proc, call *rmi.Call) (any, error) {
	if len(call.Args) == 0 {
		return nil, fmt.Errorf("container: %s.%s: stateful invocation requires a session key", b.name, call.Method)
	}
	sessionKey, ok := call.Args[0].(string)
	if !ok {
		return nil, fmt.Errorf("container: %s.%s: session key must be a string", b.name, call.Method)
	}
	if call.Method == methodApplySession {
		st, ok := call.Arg(1).(State)
		if !ok {
			return nil, fmt.Errorf("container: %s: session replication payload must be State", b.name)
		}
		b.srv.Compute(p, b.srv.costs.CacheHitCPU)
		b.instances[sessionKey] = st.Clone()
		return nil, nil
	}
	m, ok := b.methods[call.Method]
	if !ok {
		return nil, fmt.Errorf("container: %s.%s: %w", b.name, call.Method, ErrNoSuchMethod)
	}
	st, ok := b.instances[sessionKey]
	if !ok {
		st = make(State)
		b.instances[sessionKey] = st
		b.mActivations.Inc()
	}
	b.calls++
	b.mCalls.Inc()
	b.srv.Compute(p, b.srv.costs.MethodCPU)
	result, err := m(p, &Invocation{
		Server:  b.srv,
		Method:  call.Method,
		Args:    call.Args[1:],
		Caller:  call.Caller,
		Session: sessionKey,
		State:   st,
	})
	if err == nil && b.replicaServer != "" && b.replicaServer != b.srv.name {
		if rerr := b.replicate(p, sessionKey, st); rerr != nil {
			return nil, fmt.Errorf("container: %s session replication: %w", b.name, rerr)
		}
	}
	return result, err
}

// replicate pushes the session instance's state to the buddy server.
func (b *StatefulBean) replicate(p *sim.Proc, sessionKey string, st State) error {
	defer trace.Opf(p, "session-repl", b.replicaServer, "", trace.CauseService, b.name, " -> ", b.replicaServer)()
	stub, err := b.srv.StubFor(p, b.replicaServer, b.name)
	if err != nil {
		return err
	}
	if _, err := stub.InvokeSized(p, methodApplySession, 1024, 64, sessionKey, st.Clone()); err != nil {
		return err
	}
	b.replicated++
	b.mRepl.Inc()
	return nil
}

// MDBean is a deployed message-driven bean: an asynchronous façade consuming
// a JMS topic (the UpdateSubscriber of Section 4.5).
type MDBean struct {
	srv      *Server
	name     string
	received int64

	mRecv *metrics.Counter
}

// DeployMDB deploys a message-driven bean subscribed to topic on the
// deployment's JMS provider. onMessage runs on the delivery process with
// container overhead charged.
func DeployMDB(srv *Server, name, topic string, onMessage func(p *sim.Proc, srvr *Server, msg *jms.Message)) (*MDBean, error) {
	if srv.jms == nil {
		return nil, fmt.Errorf("container: deploy MDB %s: server %s has no JMS provider", name, srv.name)
	}
	b := &MDBean{
		srv: srv, name: name,
		mRecv: srv.Env().Metrics().Counter("container_mdb_deliveries_total"),
	}
	err := srv.jms.Subscribe(topic, srv.name, name, func(p *sim.Proc, msg *jms.Message) {
		b.received++
		b.mRecv.Inc()
		srv.Compute(p, srv.costs.MethodCPU)
		onMessage(p, srv, msg)
	})
	if err != nil {
		return nil, fmt.Errorf("container: deploy MDB %s: %w", name, err)
	}
	srv.beans[name] = &binding{name: name, kind: MessageDriven}
	return b, nil
}

// Name returns the bean's deployment name.
func (b *MDBean) Name() string { return b.name }

// Received returns the number of messages consumed.
func (b *MDBean) Received() int64 { return b.received }
