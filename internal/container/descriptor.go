package container

import (
	"errors"
	"fmt"
	"time"
)

// Descriptor is a (standard) deployment descriptor for one bean.
type Descriptor struct {
	Name string
	Kind BeanKind

	// Entity beans only.
	Table       string
	PKColumn    string
	Persistence Persistence

	// LocalOnly marks the bean as exposing only a local interface (EJB 2.0
	// local interfaces). The paper's design-rule enforcement (Section 5)
	// requires every non-façade component to be local-only so that remote
	// clients can reach shared state exclusively through façades.
	LocalOnly bool

	// Facade marks the bean as a remotely invocable façade.
	Facade bool
}

// UpdateMode selects how replica refresh traffic is delivered.
type UpdateMode int

// Update modes for read-only replicas and query caches.
const (
	// SyncUpdate blocks the writer until every replica applied the push
	// (zero staleness).
	SyncUpdate UpdateMode = iota + 1
	// AsyncUpdate publishes to a JMS topic and returns immediately.
	AsyncUpdate
	// LeaseUpdate sits between the two: the writer returns immediately,
	// and a batching propagator coalesces everything committed inside a
	// tick window into one last-writer delta per entity, pushed to each
	// edge as a single RMI message per window. Staleness is bounded by
	// the window (MaxStaleness, or an explicit BatchWindow).
	LeaseUpdate
)

func (m UpdateMode) String() string {
	switch m {
	case SyncUpdate:
		return "sync"
	case AsyncUpdate:
		return "async"
	case LeaseUpdate:
		return "lease"
	default:
		return fmt.Sprintf("UpdateMode(%d)", int(m))
	}
}

// RefreshMode selects how replicas obtain fresh state after a change.
type RefreshMode int

// Refresh modes.
const (
	// PushRefresh carries the new state in the invalidation message, so
	// replica reads are always local.
	PushRefresh RefreshMode = iota + 1
	// PullRefresh only invalidates; the replica re-fetches from the
	// updater façade on the next read.
	PullRefresh
)

func (m RefreshMode) String() string {
	switch m {
	case PushRefresh:
		return "push"
	case PullRefresh:
		return "pull"
	default:
		return fmt.Sprintf("RefreshMode(%d)", int(m))
	}
}

// ReplicaSpec is the extended-descriptor entry for a read-only replica of an
// entity bean (Section 5: "the extended deployment descriptor should
// identify the updater read-write bean and the method of update").
type ReplicaSpec struct {
	// Bean is the read-write entity bean to replicate.
	Bean string
	// Update selects blocking (sync) or JMS (async) propagation.
	Update UpdateMode
	// Refresh selects push or pull replica refresh.
	Refresh RefreshMode
	// MaxStaleness, when positive, bounds how stale a replica read may be:
	// entries older than this refresh through the fetch path even if no
	// invalidation arrived (the "application-specific relaxed consistency
	// parameters" the paper's Section 5 points at, in the spirit of TACT).
	// It is the safety net for lost asynchronous pushes.
	MaxStaleness time.Duration
	// BestEffort applies to sync updates only: unreachable replicas are
	// skipped instead of failing the write (availability over
	// consistency during partitions).
	BestEffort bool
	// DeltaPush propagates only changed fields (Section 4.3's "transfer
	// only the changes" optimization). Requires PushRefresh.
	DeltaPush bool
	// FullState opts out of deltas-by-default
	// (core.ReplicationOptions.DeltasByDefault): the replica keeps
	// receiving full post-write state even when the wiring would
	// otherwise switch it to delta pushes. Mutually exclusive with
	// DeltaPush.
	FullState bool
	// BatchWindow, when positive, batches and coalesces pushes per
	// (destination, window): async publishes collapse into one topic
	// message per window, lease pushes into one RMI message per edge per
	// window. A lease without an explicit window derives one from
	// MaxStaleness. Not meaningful for SyncUpdate (the writer blocks per
	// commit by definition).
	BatchWindow time.Duration
	// Partition, when set, shards the bean's key space: each edge replica
	// holds (and receives pushes for) only its assigned partitions instead
	// of the full key set. nil keeps the paper's full replication.
	Partition *PartitionSpec
}

// CachedQuerySpec is the extended-descriptor entry for one cached query:
// its name, and which entity beans' writes invalidate it.
type CachedQuerySpec struct {
	// Name is the query's cache-key prefix (keys are "<Name>:<param>").
	Name string
	// InvalidatedBy lists read-write beans whose updates affect the query.
	InvalidatedBy []string
}

// ExtendedDescriptor is the paper's proposed deployment-descriptor
// extension: it declaratively requests read-only replicas and query caches
// so the container infrastructure can wire the update machinery itself
// instead of the application programmer (pattern implementation
// automation, Section 5). core.AutoWire consumes it.
type ExtendedDescriptor struct {
	// Replicas to materialize on each edge server.
	Replicas []ReplicaSpec
	// CachedQueries to materialize in edge query caches.
	CachedQueries []CachedQuerySpec
	// Topic names the JMS topic for async update propagation.
	Topic string
}

// ErrBadDescriptor reports an invalid extended descriptor.
var ErrBadDescriptor = errors.New("container: invalid extended descriptor")

// Validate checks internal consistency of the extended descriptor.
func (d *ExtendedDescriptor) Validate() error {
	seen := make(map[string]bool, len(d.Replicas))
	for _, r := range d.Replicas {
		if r.Bean == "" {
			return fmt.Errorf("%w: replica with empty bean", ErrBadDescriptor)
		}
		if seen[r.Bean] {
			return fmt.Errorf("%w: duplicate replica for bean %s", ErrBadDescriptor, r.Bean)
		}
		seen[r.Bean] = true
		// A zero-valued mode means the descriptor author forgot the field
		// entirely — report that as its own error instead of folding it
		// into "unknown", so the fix ("set Update/Refresh") is obvious.
		if r.Update == 0 {
			return fmt.Errorf("%w: replica %s: update mode not set", ErrBadDescriptor, r.Bean)
		}
		if r.Refresh == 0 {
			return fmt.Errorf("%w: replica %s: refresh mode not set (push or pull)", ErrBadDescriptor, r.Bean)
		}
		switch r.Update {
		case SyncUpdate, AsyncUpdate, LeaseUpdate:
		default:
			return fmt.Errorf("%w: replica %s: unknown update mode", ErrBadDescriptor, r.Bean)
		}
		switch r.Refresh {
		case PushRefresh, PullRefresh:
		default:
			return fmt.Errorf("%w: replica %s: unknown refresh mode", ErrBadDescriptor, r.Bean)
		}
		if r.Update == AsyncUpdate && d.Topic == "" {
			return fmt.Errorf("%w: replica %s: async update requires a topic", ErrBadDescriptor, r.Bean)
		}
		if r.DeltaPush && r.Refresh != PushRefresh {
			return fmt.Errorf("%w: replica %s: delta push requires push refresh", ErrBadDescriptor, r.Bean)
		}
		if r.DeltaPush && r.FullState {
			return fmt.Errorf("%w: replica %s: delta push conflicts with full-state", ErrBadDescriptor, r.Bean)
		}
		if r.MaxStaleness < 0 {
			return fmt.Errorf("%w: replica %s: negative max staleness", ErrBadDescriptor, r.Bean)
		}
		if r.BatchWindow < 0 {
			return fmt.Errorf("%w: replica %s: negative batch window", ErrBadDescriptor, r.Bean)
		}
		if r.Update == LeaseUpdate {
			if r.Refresh != PushRefresh {
				return fmt.Errorf("%w: replica %s: lease update requires push refresh", ErrBadDescriptor, r.Bean)
			}
			if r.MaxStaleness <= 0 && r.BatchWindow <= 0 {
				return fmt.Errorf("%w: replica %s: lease update needs a staleness budget (MaxStaleness or BatchWindow)", ErrBadDescriptor, r.Bean)
			}
		}
		if r.Update == SyncUpdate && r.BatchWindow > 0 {
			return fmt.Errorf("%w: replica %s: sync updates are unbatched (use a lease)", ErrBadDescriptor, r.Bean)
		}
		if err := r.Partition.Validate(); err != nil {
			return fmt.Errorf("replica %s: %w", r.Bean, err)
		}
	}
	qseen := make(map[string]bool, len(d.CachedQueries))
	for _, q := range d.CachedQueries {
		if q.Name == "" {
			return fmt.Errorf("%w: cached query with empty name", ErrBadDescriptor)
		}
		if qseen[q.Name] {
			return fmt.Errorf("%w: duplicate cached query %s", ErrBadDescriptor, q.Name)
		}
		qseen[q.Name] = true
		for _, b := range q.InvalidatedBy {
			if !seen[b] {
				// Queries may be invalidated by beans without replicas;
				// only empty names are invalid.
				if b == "" {
					return fmt.Errorf("%w: cached query %s: empty invalidator", ErrBadDescriptor, q.Name)
				}
			}
		}
	}
	return nil
}
