package container

import (
	"errors"
	"fmt"
	"time"
)

// Descriptor is a (standard) deployment descriptor for one bean.
type Descriptor struct {
	Name string
	Kind BeanKind

	// Entity beans only.
	Table       string
	PKColumn    string
	Persistence Persistence

	// LocalOnly marks the bean as exposing only a local interface (EJB 2.0
	// local interfaces). The paper's design-rule enforcement (Section 5)
	// requires every non-façade component to be local-only so that remote
	// clients can reach shared state exclusively through façades.
	LocalOnly bool

	// Facade marks the bean as a remotely invocable façade.
	Facade bool
}

// UpdateMode selects how replica refresh traffic is delivered.
type UpdateMode int

// Update modes for read-only replicas and query caches.
const (
	// SyncUpdate blocks the writer until every replica applied the push
	// (zero staleness).
	SyncUpdate UpdateMode = iota + 1
	// AsyncUpdate publishes to a JMS topic and returns immediately.
	AsyncUpdate
)

func (m UpdateMode) String() string {
	switch m {
	case SyncUpdate:
		return "sync"
	case AsyncUpdate:
		return "async"
	default:
		return fmt.Sprintf("UpdateMode(%d)", int(m))
	}
}

// RefreshMode selects how replicas obtain fresh state after a change.
type RefreshMode int

// Refresh modes.
const (
	// PushRefresh carries the new state in the invalidation message, so
	// replica reads are always local.
	PushRefresh RefreshMode = iota + 1
	// PullRefresh only invalidates; the replica re-fetches from the
	// updater façade on the next read.
	PullRefresh
)

func (m RefreshMode) String() string {
	switch m {
	case PushRefresh:
		return "push"
	case PullRefresh:
		return "pull"
	default:
		return fmt.Sprintf("RefreshMode(%d)", int(m))
	}
}

// ReplicaSpec is the extended-descriptor entry for a read-only replica of an
// entity bean (Section 5: "the extended deployment descriptor should
// identify the updater read-write bean and the method of update").
type ReplicaSpec struct {
	// Bean is the read-write entity bean to replicate.
	Bean string
	// Update selects blocking (sync) or JMS (async) propagation.
	Update UpdateMode
	// Refresh selects push or pull replica refresh.
	Refresh RefreshMode
	// MaxStaleness, when positive, bounds how stale a replica read may be:
	// entries older than this refresh through the fetch path even if no
	// invalidation arrived (the "application-specific relaxed consistency
	// parameters" the paper's Section 5 points at, in the spirit of TACT).
	// It is the safety net for lost asynchronous pushes.
	MaxStaleness time.Duration
	// BestEffort applies to sync updates only: unreachable replicas are
	// skipped instead of failing the write (availability over
	// consistency during partitions).
	BestEffort bool
	// DeltaPush propagates only changed fields (Section 4.3's "transfer
	// only the changes" optimization). Requires PushRefresh.
	DeltaPush bool
}

// CachedQuerySpec is the extended-descriptor entry for one cached query:
// its name, and which entity beans' writes invalidate it.
type CachedQuerySpec struct {
	// Name is the query's cache-key prefix (keys are "<Name>:<param>").
	Name string
	// InvalidatedBy lists read-write beans whose updates affect the query.
	InvalidatedBy []string
}

// ExtendedDescriptor is the paper's proposed deployment-descriptor
// extension: it declaratively requests read-only replicas and query caches
// so the container infrastructure can wire the update machinery itself
// instead of the application programmer (pattern implementation
// automation, Section 5). core.AutoWire consumes it.
type ExtendedDescriptor struct {
	// Replicas to materialize on each edge server.
	Replicas []ReplicaSpec
	// CachedQueries to materialize in edge query caches.
	CachedQueries []CachedQuerySpec
	// Topic names the JMS topic for async update propagation.
	Topic string
}

// ErrBadDescriptor reports an invalid extended descriptor.
var ErrBadDescriptor = errors.New("container: invalid extended descriptor")

// Validate checks internal consistency of the extended descriptor.
func (d *ExtendedDescriptor) Validate() error {
	seen := make(map[string]bool, len(d.Replicas))
	for _, r := range d.Replicas {
		if r.Bean == "" {
			return fmt.Errorf("%w: replica with empty bean", ErrBadDescriptor)
		}
		if seen[r.Bean] {
			return fmt.Errorf("%w: duplicate replica for bean %s", ErrBadDescriptor, r.Bean)
		}
		seen[r.Bean] = true
		switch r.Update {
		case SyncUpdate, AsyncUpdate:
		default:
			return fmt.Errorf("%w: replica %s: unknown update mode", ErrBadDescriptor, r.Bean)
		}
		switch r.Refresh {
		case PushRefresh, PullRefresh:
		default:
			return fmt.Errorf("%w: replica %s: unknown refresh mode", ErrBadDescriptor, r.Bean)
		}
		if r.Update == AsyncUpdate && d.Topic == "" {
			return fmt.Errorf("%w: replica %s: async update requires a topic", ErrBadDescriptor, r.Bean)
		}
		if r.DeltaPush && r.Refresh != PushRefresh {
			return fmt.Errorf("%w: replica %s: delta push requires push refresh", ErrBadDescriptor, r.Bean)
		}
	}
	qseen := make(map[string]bool, len(d.CachedQueries))
	for _, q := range d.CachedQueries {
		if q.Name == "" {
			return fmt.Errorf("%w: cached query with empty name", ErrBadDescriptor)
		}
		if qseen[q.Name] {
			return fmt.Errorf("%w: duplicate cached query %s", ErrBadDescriptor, q.Name)
		}
		qseen[q.Name] = true
		for _, b := range q.InvalidatedBy {
			if !seen[b] {
				// Queries may be invalidated by beans without replicas;
				// only empty names are invalid.
				if b == "" {
					return fmt.Errorf("%w: cached query %s: empty invalidator", ErrBadDescriptor, q.Name)
				}
			}
		}
	}
	return nil
}
