package container_test

import (
	"fmt"
	"testing"
	"time"

	"wadeploy/internal/container"
	"wadeploy/internal/core"
	"wadeploy/internal/sim"
	"wadeploy/internal/simnet"
)

// TestRebindNoDanglingBinding is the live-migration cut-over invariant: while
// RedeployStateless repeatedly swaps a bean's implementation, concurrent
// remote callers must never observe an unbound name or a failed dispatch —
// every call lands on the implementation bound at some point during the
// call, so the versions a sequential caller observes are monotone.
func TestRebindNoDanglingBinding(t *testing.T) {
	env := sim.NewEnv(3)
	d, err := core.NewPaperDeployment(env, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	methods := func(version int) map[string]container.Method {
		return map[string]container.Method{
			"get": func(p *sim.Proc, inv *container.Invocation) (any, error) {
				return version, nil
			},
		}
	}
	if _, err := container.DeployStateless(d.Main, "Flip", methods(0)); err != nil {
		t.Fatal(err)
	}

	const (
		swaps      = 40
		swapEvery  = 25 * time.Millisecond
		requesters = 6
	)
	env.Spawn("rebinder", func(p *sim.Proc) {
		for v := 1; v <= swaps; v++ {
			p.Sleep(swapEvery)
			if _, err := container.RedeployStateless(d.Main, "Flip", methods(v)); err != nil {
				t.Errorf("redeploy v%d: %v", v, err)
				return
			}
		}
	})

	for i := 0; i < requesters; i++ {
		edge := d.Edges[i%len(d.Edges)]
		env.Spawn(fmt.Sprintf("requester-%d", i), func(p *sim.Proc) {
			last := -1
			calls := 0
			for p.Now() < time.Duration(swaps+4)*swapEvery {
				stub, err := edge.StubFor(p, simnet.NodeMain, "Flip")
				if err != nil {
					t.Errorf("lookup during rebind: %v", err)
					return
				}
				v, err := stub.Invoke(p, "get")
				if err != nil {
					t.Errorf("call during rebind: %v", err)
					return
				}
				got, ok := v.(int)
				if !ok || got < 0 || got > swaps {
					t.Errorf("response %v from outside the bound-version range", v)
					return
				}
				if got < last {
					t.Errorf("version went backwards: %d after %d", got, last)
					return
				}
				last = got
				calls++
			}
			if calls == 0 {
				t.Error("requester made no calls")
			}
			if last == 0 {
				t.Error("requester never observed a rebound implementation")
			}
		})
	}
	env.RunAll()
	env.Close()
}
