package container

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"wadeploy/internal/jms"
	"wadeploy/internal/rmi"
	"wadeploy/internal/sim"
	"wadeploy/internal/simnet"
	"wadeploy/internal/sqldb"
	"wadeploy/internal/web"
)

// Property: under synchronous push propagation, every read from a replica
// that happens after a write returns (at least) that write's value — zero
// staleness, for any interleaving of writes and reads.
func TestPropertySyncPushZeroStaleness(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		f := newPropFixture(seed)
		rw, ro := f.wireSync()
		ok := true
		f.env.Spawn("driver", func(p *sim.Proc) {
			expected := int64(10) // seeded qty for i1
			ops := int(opsRaw%20) + 2
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				if rng.Intn(2) == 0 {
					expected++
					if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(expected)}); err != nil {
						ok = false
						return
					}
				} else {
					st, err := ro.Get(p, sqldb.Str("i1"))
					if err != nil {
						ok = false
						return
					}
					if st["qty"].AsInt() != expected {
						ok = false
						return
					}
				}
				p.Sleep(time.Duration(rng.Intn(50)) * time.Millisecond)
			}
		})
		f.env.RunAll()
		f.env.Close()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: under asynchronous propagation, replicas converge to the final
// written value once the simulation drains, for any write sequence.
func TestPropertyAsyncEventualConvergence(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		fx := newPropFixture(seed)
		rw, ro := fx.wireAsync()
		final := int64(10)
		ok := true
		fx.env.Spawn("writer", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed))
			ops := int(opsRaw%15) + 1
			for i := 0; i < ops; i++ {
				final = int64(100 + i)
				if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(final)}); err != nil {
					ok = false
					return
				}
				p.Sleep(time.Duration(rng.Intn(30)) * time.Millisecond)
			}
		})
		fx.env.RunAll() // drains all async deliveries
		if !ok {
			return false
		}
		converged := true
		fx.env.Spawn("reader", func(p *sim.Proc) {
			st, err := ro.Get(p, sqldb.Str("i1"))
			if err != nil || st["qty"].AsInt() != final {
				converged = false
			}
		})
		fx.env.RunAll()
		fx.env.Close()
		return converged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// fixtureP mirrors the test fixture but without *testing.T plumbing so it
// can run inside testing/quick property functions.
type fixtureP struct {
	env  *sim.Env
	main *Server
	edge *Server
}

func newPropFixture(seed int64) *fixtureP {
	env := sim.NewEnv(seed)
	net := simnet.New(env)
	for _, id := range []string{"main", "edge"} {
		if _, err := net.AddNode(id, 2); err != nil {
			panic(err)
		}
	}
	if _, err := net.AddLink("main", "edge", 100*time.Millisecond, 1e12); err != nil {
		panic(err)
	}
	db := sqldb.New()
	mustExecP(db, `CREATE TABLE inventory (item_id TEXT PRIMARY KEY, qty INT NOT NULL)`)
	mustExecP(db, `INSERT INTO inventory VALUES ('i1', 10)`)
	rt := rmi.NewRuntime(net, rmi.DefaultOptions)
	provider, err := jms.NewProvider(net, "main", jms.DefaultOptions)
	if err != nil {
		panic(err)
	}
	mk := func(name string) *Server {
		s, err := NewServer(Config{
			Name: name, DBNode: "main", DB: db, Net: net, RMI: rt, JMS: provider,
			Web: web.DefaultOptions, Costs: DefaultCostModel,
		})
		if err != nil {
			panic(err)
		}
		return s
	}
	return &fixtureP{env: env, main: mk("main"), edge: mk("edge")}
}

func (f *fixtureP) wireSync() (*RWEntity, *ROEntity) {
	rw, err := DeployRWEntity(f.main, "InvRW", "inventory", "item_id")
	if err != nil {
		panic(err)
	}
	ro, err := DeployROEntity(f.edge, "InvRO", "InvRW", nil)
	if err != nil {
		panic(err)
	}
	uf, err := DeployUpdaterFacade(f.edge, "Updater")
	if err != nil {
		panic(err)
	}
	uf.Register("InvRW", ro)
	rw.AddPropagator(NewSyncPropagator(f.main, []SyncTarget{{Server: "edge", Facade: "Updater"}}, 256))
	f.preload(ro)
	return rw, ro
}

func (f *fixtureP) wireAsync() (*RWEntity, *ROEntity) {
	rw, err := DeployRWEntity(f.main, "InvRW", "inventory", "item_id")
	if err != nil {
		panic(err)
	}
	ro, err := DeployROEntity(f.edge, "InvRO", "InvRW", nil)
	if err != nil {
		panic(err)
	}
	uf, err := DeployUpdaterFacade(f.edge, "Updater")
	if err != nil {
		panic(err)
	}
	uf.Register("InvRW", ro)
	ap, err := NewAsyncPropagator(f.main, "updates", 256)
	if err != nil {
		panic(err)
	}
	rw.AddPropagator(ap)
	if _, err := DeployUpdateSubscriber(f.edge, "Sub", "updates", uf); err != nil {
		panic(err)
	}
	f.preload(ro)
	return rw, ro
}

func (f *fixtureP) preload(ro *ROEntity) {
	ro.Preload(sqldb.Str("i1"), State{"item_id": sqldb.Str("i1"), "qty": sqldb.Int(10)})
}

func mustExecP(db *sqldb.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		panic(fmt.Sprintf("%s: %v", sql, err))
	}
}
