package container

import (
	"fmt"
	"time"

	"wadeploy/internal/metrics"
	"wadeploy/internal/sim"
	"wadeploy/internal/trace"
)

// mergeUpdate folds a later commit onto an accumulated one for the same
// entity, last-writer-wins per field. The accumulator owns its State map
// (callers clone on first insert), so delta-onto-delta and delta-onto-full
// merges write in place without allocating; deletes, full-state pushes and
// writes after a delete replace the accumulator wholesale.
func mergeUpdate(acc *Update, u Update) {
	switch {
	case u.Deleted, !u.Delta, acc.Deleted:
		st := u.State
		if st != nil {
			st = st.Clone()
		}
		*acc = u
		acc.State = st
	default:
		for k, v := range u.State {
			acc.State[k] = v
		}
		acc.CommittedAt = u.CommittedAt
	}
}

// CoalesceUpdates collapses a commit-ordered batch so each entity appears
// once, carrying the last-writer-wins merge of everything that happened to
// it (N commits to the same bean collapse to one delta). Entities keep the
// order of their first appearance; input updates are never mutated. Both
// the batching propagator and replog replay use this, so "coalesced push"
// and "coalesced log replay" are the same operation by construction.
func CoalesceUpdates(updates []Update) []Update {
	if len(updates) <= 1 {
		return updates
	}
	out := make([]Update, 0, len(updates))
	index := make(map[updateKey]int, len(updates))
	for _, u := range updates {
		k := updateKey{u.Bean, pkKey(u.PK)}
		if i, ok := index[k]; ok {
			mergeUpdate(&out[i], u)
			continue
		}
		index[k] = len(out)
		c := u
		if c.State != nil {
			c.State = c.State.Clone()
		}
		out = append(out, c)
	}
	return out
}

type updateKey struct {
	bean string
	pk   string
}

// BatchingPropagator implements bounded-staleness (lease) and batched-async
// propagation: the writer's Propagate returns immediately after coalescing
// the commit into the pending window, and a timer flushes everything
// committed inside one tick window as a single WAN message per destination
// — M beans share the message, N commits to one entity collapse to its
// last-writer delta. With a topic it publishes one JMS message per window
// (batched async); with RMI targets it pushes one apply batch per edge per
// window (the lease: staleness is bounded by window + one-way WAN delay).
type BatchingPropagator struct {
	srv    *Server
	window time.Duration
	topic  string       // topic mode: one JMS publish per window
	targets []SyncTarget // target mode: one RMI push per (edge, window)
	bytes  int          // full-state record size, as SyncPropagator

	// BestEffort skips unreachable targets instead of surfacing the error
	// (flushes are off the writer's critical path either way).
	BestEffort bool

	pending []Update
	index   map[updateKey]int
	armed   bool

	commits   int64
	coalesced int64
	flushes   int64
	messages  int64
	wireBytes int64

	mCommits   *metrics.Counter
	mCoalesced *metrics.Counter
	mFlushes   *metrics.Counter
	mMessages  *metrics.Counter
	mBytes     *metrics.Counter
}

// NewBatchingPropagator creates a lease/batched propagator on srv flushing
// every window. Exactly one of topic (JMS mode) or targets (RMI lease mode)
// selects the transport; targets may start empty and be added later by the
// wiring. The push_batch_* metric family registers here, so paper-default
// runs (which never construct a batcher) keep their metric snapshots
// byte-identical.
func NewBatchingPropagator(srv *Server, window time.Duration, topic string, targets []SyncTarget, msgBytes int) (*BatchingPropagator, error) {
	if window <= 0 {
		return nil, fmt.Errorf("container: batching propagator on %s: window must be positive", srv.name)
	}
	if topic != "" && len(targets) > 0 {
		return nil, fmt.Errorf("container: batching propagator on %s: topic and targets are exclusive", srv.name)
	}
	if topic != "" {
		if srv.jms == nil {
			return nil, fmt.Errorf("container: batching propagator on %s: no JMS provider", srv.name)
		}
		srv.jms.CreateTopic(topic)
	}
	if msgBytes <= 0 {
		msgBytes = 1024
	}
	reg := srv.Env().Metrics()
	return &BatchingPropagator{
		srv: srv, window: window, topic: topic, targets: targets, bytes: msgBytes,
		index:      make(map[updateKey]int),
		mCommits:   reg.Counter("push_batch_commits_total"),
		mCoalesced: reg.Counter("push_batch_coalesced_total"),
		mFlushes:   reg.Counter("push_batch_flushes_total"),
		mMessages:  reg.Counter("push_batch_messages_total"),
		mBytes:     reg.Counter("push_batch_bytes_total"),
	}, nil
}

// Window returns the tick window (the staleness bound the lease enforces,
// up to one-way WAN delivery on top).
func (bp *BatchingPropagator) Window() time.Duration { return bp.window }

// Commits returns how many committed updates entered the batcher.
func (bp *BatchingPropagator) Commits() int64 { return bp.commits }

// Coalesced returns how many commits were folded into an already-pending
// update for the same entity (WAN messages saved by last-writer-wins).
func (bp *BatchingPropagator) Coalesced() int64 { return bp.coalesced }

// Flushes returns how many non-empty windows were flushed.
func (bp *BatchingPropagator) Flushes() int64 { return bp.flushes }

// Messages returns how many WAN messages (JMS publishes or per-target RMI
// pushes) the batcher sent.
func (bp *BatchingPropagator) Messages() int64 { return bp.messages }

// WireBytesTotal returns the cumulative payload bytes sent.
func (bp *BatchingPropagator) WireBytesTotal() int64 { return bp.wireBytes }

// AddTarget attaches another lease destination at runtime (demand-driven
// extension). Adding an existing target is a no-op.
func (bp *BatchingPropagator) AddTarget(t SyncTarget) {
	for _, cur := range bp.targets {
		if cur == t {
			return
		}
	}
	bp.targets = append(bp.targets, t)
}

// RemoveTarget detaches a lease destination (suspension of pushes to a
// partitioned edge). Removing an absent target is a no-op.
func (bp *BatchingPropagator) RemoveTarget(t SyncTarget) {
	for i, cur := range bp.targets {
		if cur == t {
			bp.targets = append(bp.targets[:i], bp.targets[i+1:]...)
			return
		}
	}
}

// Targets returns the number of lease destinations.
func (bp *BatchingPropagator) Targets() int { return len(bp.targets) }

// Propagate coalesces the commits into the pending window and returns —
// the writer never waits on the WAN. The first commit of an idle window
// arms the flush timer, so an idle system schedules no events at all.
func (bp *BatchingPropagator) Propagate(p *sim.Proc, updates []Update) error {
	for _, u := range updates {
		bp.commits++
		bp.mCommits.Inc()
		k := updateKey{u.Bean, pkKey(u.PK)}
		if i, ok := bp.index[k]; ok {
			mergeUpdate(&bp.pending[i], u)
			bp.coalesced++
			bp.mCoalesced.Inc()
			continue
		}
		bp.index[k] = len(bp.pending)
		c := u
		if c.State != nil {
			c.State = c.State.Clone()
		}
		bp.pending = append(bp.pending, c)
	}
	if !bp.armed && len(bp.pending) > 0 {
		bp.armed = true
		bp.srv.Env().After(bp.window, bp.flush)
	}
	return nil
}

// batchBytes sizes the flushed message like SyncPropagator: deltas and
// deletes ride their WireBytes estimate, full-state the record size.
func (bp *BatchingPropagator) batchBytes(batch []Update) int {
	total := 0
	for _, u := range batch {
		if u.Delta || u.Deleted {
			total += u.WireBytes()
		} else {
			total += bp.bytes
		}
	}
	if total <= 0 {
		total = bp.bytes
	}
	return total
}

// flush ships the pending window. It runs from the timer callback, so the
// actual sends happen on a spawned process (both jms.Publish and RMI need
// one); the next window arms on its first commit.
func (bp *BatchingPropagator) flush() {
	bp.armed = false
	if len(bp.pending) == 0 {
		return
	}
	batch := bp.pending
	bp.pending = nil
	clear(bp.index)
	bp.flushes++
	bp.mFlushes.Inc()
	payload := bp.batchBytes(batch)
	env := bp.srv.Env()
	if bp.topic != "" {
		env.Spawn("push-batch:"+bp.topic, func(p *sim.Proc) {
			defer trace.Opf(p, "jms", bp.srv.name, "", trace.CauseService, "batch publish ", bp.topic, "")()
			if err := bp.srv.jms.Publish(p, bp.srv.name, bp.topic, batch, payload); err != nil {
				return
			}
			bp.messages++
			bp.mMessages.Inc()
			bp.wireBytes += int64(payload)
			bp.mBytes.Add(int64(payload))
		})
		return
	}
	for _, t := range bp.targets {
		t := t
		env.Spawn("push-batch:"+t.Server, func(p *sim.Proc) {
			defer trace.Op(p, "push", "lease batch", bp.srv.name, t.Server, trace.CauseService)()
			stub, err := bp.srv.StubFor(p, t.Server, t.Facade)
			if err == nil {
				_, err = stub.InvokeSized(p, MethodApply, payload, 64, batch)
			}
			if err != nil {
				// Off-writer flush: nothing to fail. Best-effort and
				// strict leases differ only in whether the miss counts
				// as a skip; the replica's MaxStaleness fetch path is
				// the safety net either way.
				return
			}
			bp.messages++
			bp.mMessages.Inc()
			bp.wireBytes += int64(payload)
			bp.mBytes.Add(int64(payload))
		})
	}
}
