package container

import (
	"testing"
	"time"

	"wadeploy/internal/sim"
	"wadeploy/internal/sqldb"
)

// TestROEntityServesStaleDuringPartition: a replica with a TTL and a
// serve-stale bound keeps answering reads from its (expired) local copy
// while the WAN path to the fetch source is down, and errors once the copy
// outlives the bound.
func TestROEntityServesStaleDuringPartition(t *testing.T) {
	f := newFixture(t)
	fetch := func(p *sim.Proc, pk sqldb.Value) (State, error) {
		stub, err := f.edge.StubFor(p, "main", "InvFacade")
		if err != nil {
			return nil, err
		}
		v, err := stub.Invoke(p, "get", pk)
		if err != nil {
			return nil, err
		}
		return v.(State), nil
	}
	if _, err := DeployStateless(f.main, "InvFacade", map[string]Method{
		"get": func(p *sim.Proc, inv *Invocation) (any, error) {
			return State{"item_id": sqldb.Str("i1"), "qty": sqldb.Int(10)}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	ro, err := DeployROEntity(f.edge, "InvRO", "Inventory", fetch)
	if err != nil {
		t.Fatal(err)
	}
	ro.SetTTL(10 * time.Second)
	ro.SetServeStale(time.Minute)
	f.run(t, func(p *sim.Proc) {
		pk := sqldb.Str("i1")
		if _, err := ro.Get(p, pk); err != nil {
			t.Errorf("cold fetch: %v", err)
			return
		}
		if err := f.net.SetLinkState("main", "edge", false); err != nil {
			t.Error(err)
			return
		}
		// Past the TTL the refresh fails, but within the bound the stale
		// copy is served.
		p.Sleep(20 * time.Second)
		st, err := ro.Get(p, pk)
		if err != nil {
			t.Errorf("stale read during partition: %v", err)
		} else if st["qty"].AsInt() != 10 {
			t.Errorf("stale read qty = %v", st["qty"])
		}
		if ro.StaleServes() != 1 {
			t.Errorf("stale serves = %d, want 1", ro.StaleServes())
		}
		// Past the serve-stale bound, reads fail.
		p.Sleep(2 * time.Minute)
		if _, err := ro.Get(p, pk); err == nil {
			t.Error("read beyond the stale bound unexpectedly succeeded")
		}
	})
	if got := f.env.Metrics().CounterValue("container_stale_serves_total"); got != 1 {
		t.Fatalf("container_stale_serves_total = %d, want 1", got)
	}
}

// TestQueryCacheServesStaleDuringPartition mirrors the replica test for
// cached aggregate queries.
func TestQueryCacheServesStaleDuringPartition(t *testing.T) {
	f := newFixture(t)
	fetch := func(p *sim.Proc, key string) (any, error) {
		stub, err := f.edge.StubFor(p, "main", "QueryFacade")
		if err != nil {
			return nil, err
		}
		return stub.Invoke(p, "run", key)
	}
	if _, err := DeployStateless(f.main, "QueryFacade", map[string]Method{
		"run": func(p *sim.Proc, inv *Invocation) (any, error) {
			return []string{"i1", "i2"}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	qc := NewQueryCache(f.edge, "itemsOf", fetch)
	qc.SetTTL(10 * time.Second)
	qc.SetServeStale(time.Minute)
	f.run(t, func(p *sim.Proc) {
		if _, err := qc.Get(p, "itemsOf:p1"); err != nil {
			t.Errorf("cold fetch: %v", err)
			return
		}
		if err := f.net.SetLinkState("main", "edge", false); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(20 * time.Second)
		v, err := qc.Get(p, "itemsOf:p1")
		if err != nil {
			t.Errorf("stale read during partition: %v", err)
		} else if rows := v.([]string); len(rows) != 2 {
			t.Errorf("stale read rows = %v", rows)
		}
		if qc.StaleServes() != 1 {
			t.Errorf("stale serves = %d, want 1", qc.StaleServes())
		}
		p.Sleep(2 * time.Minute)
		if _, err := qc.Get(p, "itemsOf:p1"); err == nil {
			t.Error("read beyond the stale bound unexpectedly succeeded")
		}
	})
}

// TestNoStaleServeMetricsWithoutBound pins the lazy-registration contract:
// deployments that never call SetServeStale export no stale-serve metrics.
func TestNoStaleServeMetricsWithoutBound(t *testing.T) {
	f := newFixture(t)
	if _, err := DeployROEntity(f.edge, "InvRO", "Inventory", nil); err != nil {
		t.Fatal(err)
	}
	NewQueryCache(f.edge, "itemsOf", nil)
	for _, c := range f.env.Metrics().Snapshot().Counters {
		if c.Name == "container_stale_serves_total" {
			t.Fatal("stale-serve metric registered without a serve-stale bound")
		}
	}
}
