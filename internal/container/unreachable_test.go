package container

import (
	"errors"
	"testing"

	"wadeploy/internal/sim"
	"wadeploy/internal/simnet"
)

// TestUnreachablePropagatesToCaller pins the error chain across the layers:
// a partition surfaces to a container-level stub invocation as a wrapped
// simnet.UnreachableError (errors.As reaches it through the rmi wrapping),
// so callers can distinguish network failures from application errors.
func TestUnreachablePropagatesToCaller(t *testing.T) {
	f := newFixture(t)
	if _, err := DeployStateless(f.main, "Facade", map[string]Method{
		"ping": func(p *sim.Proc, inv *Invocation) (any, error) { return "pong", nil },
	}); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		stub, err := f.edge.StubFor(p, "main", "Facade")
		if err != nil {
			t.Errorf("stub: %v", err)
			return
		}
		if _, err := stub.Invoke(p, "ping"); err != nil {
			t.Errorf("invoke before partition: %v", err)
			return
		}
		if err := f.net.SetLinkState("main", "edge", false); err != nil {
			t.Error(err)
			return
		}
		_, err = stub.Invoke(p, "ping")
		var ue *simnet.UnreachableError
		if !errors.As(err, &ue) {
			t.Errorf("invoke during partition = %v, want wrapped simnet.UnreachableError", err)
		}
		if err := f.net.SetLinkState("main", "edge", true); err != nil {
			t.Error(err)
			return
		}
		if _, err := stub.Invoke(p, "ping"); err != nil {
			t.Errorf("invoke after heal: %v", err)
		}
	})
}
