// Entity partitioning: instead of every edge holding a full replica of a
// read-only bean, the bean's key space is split into partitions (by hash or
// by range of the primary key) and each partition is placed independently.
// An edge then owns a slice of the key space: owned keys are served and
// refreshed locally, unowned keys fall through to the remote façade, and
// update propagation is routed only to the edges that own the key's
// partition.
package container

import (
	"fmt"
	"hash/fnv"
	"sort"

	"wadeploy/internal/sqldb"
)

// PartitionScheme selects how primary keys map to partitions.
type PartitionScheme int

// Partitioning schemes.
const (
	// HashPartition spreads keys with an FNV-1a hash of the canonical
	// primary-key string — uniform, placement-oblivious.
	HashPartition PartitionScheme = iota + 1
	// RangePartition splits the ordered key space at explicit bounds —
	// the choice when key prefixes encode locality (e.g. region codes).
	RangePartition
)

func (s PartitionScheme) String() string {
	switch s {
	case HashPartition:
		return "hash"
	case RangePartition:
		return "range"
	default:
		return fmt.Sprintf("PartitionScheme(%d)", int(s))
	}
}

// PartitionSpec declares how one replicated bean's key space is partitioned.
// The zero value (no spec) means full replication, the paper's mode.
type PartitionSpec struct {
	Scheme     PartitionScheme
	Partitions int

	// Bounds applies to RangePartition only: the sorted, upper-exclusive
	// bounds separating the partitions. Exactly Partitions-1 entries; a key
	// belongs to the first partition whose bound is greater than it, or to
	// the last partition.
	Bounds []string
}

// Validate checks internal consistency.
func (s *PartitionSpec) Validate() error {
	if s == nil {
		return nil
	}
	if s.Partitions < 1 {
		return fmt.Errorf("%w: partition spec needs >= 1 partitions, got %d", ErrBadDescriptor, s.Partitions)
	}
	switch s.Scheme {
	case HashPartition:
		if len(s.Bounds) != 0 {
			return fmt.Errorf("%w: hash partitioning takes no bounds", ErrBadDescriptor)
		}
	case RangePartition:
		if len(s.Bounds) != s.Partitions-1 {
			return fmt.Errorf("%w: range partitioning over %d partitions needs %d bounds, got %d",
				ErrBadDescriptor, s.Partitions, s.Partitions-1, len(s.Bounds))
		}
		if !sort.StringsAreSorted(s.Bounds) {
			return fmt.Errorf("%w: range partition bounds must be sorted", ErrBadDescriptor)
		}
		for i := 1; i < len(s.Bounds); i++ {
			if s.Bounds[i] == s.Bounds[i-1] {
				return fmt.Errorf("%w: duplicate range partition bound %q", ErrBadDescriptor, s.Bounds[i])
			}
		}
	default:
		return fmt.Errorf("%w: unknown partition scheme", ErrBadDescriptor)
	}
	return nil
}

// PartitionFor maps a primary key to its partition index in [0, Partitions).
// The mapping is a pure function of the spec and the key's canonical string
// (Value.AsString — unquoted, so range bounds read naturally), so every layer
// (preload, propagation, query caches, the planner) agrees on ownership
// without coordination.
func (s *PartitionSpec) PartitionFor(pk sqldb.Value) int {
	return s.PartitionForKey(pk.AsString())
}

// PartitionForKey is PartitionFor on an already-canonicalized key string.
func (s *PartitionSpec) PartitionForKey(key string) int {
	if s == nil || s.Partitions <= 1 {
		return 0
	}
	switch s.Scheme {
	case RangePartition:
		// First bound greater than the key wins; beyond every bound is the
		// last partition.
		i := sort.SearchStrings(s.Bounds, key)
		if i < len(s.Bounds) && s.Bounds[i] == key {
			// Bounds are upper-exclusive: a key equal to a bound belongs to
			// the next partition.
			i++
		}
		return i
	default:
		h := fnv.New64a()
		_, _ = h.Write([]byte(key))
		return int(h.Sum64() % uint64(s.Partitions))
	}
}

// Owns builds an ownership predicate over the given partition set — the hook
// ROEntity.SetOwnership and propagation filters share.
func (s *PartitionSpec) Owns(owned []int) func(sqldb.Value) bool {
	set := make(map[int]bool, len(owned))
	for _, p := range owned {
		set[p] = true
	}
	return func(pk sqldb.Value) bool { return set[s.PartitionFor(pk)] }
}

// UpdateFilter builds a propagation filter passing only updates whose key
// falls in the owned partitions (SyncPropagator.SetTargetFilter).
func (s *PartitionSpec) UpdateFilter(owned []int) func(Update) bool {
	owns := s.Owns(owned)
	return func(u Update) bool { return owns(u.PK) }
}
