package container

import (
	"fmt"
	"strings"
	"time"

	"wadeploy/internal/metrics"
	"wadeploy/internal/sim"
	"wadeploy/internal/trace"
)

// QueryFetch re-executes a cached query on a miss or pull refresh. On an
// edge server this is typically one RMI call to a façade co-located with
// the database; on the main server it is a local database query.
type QueryFetch func(p *sim.Proc, queryKey string) (any, error)

// QueryCache caches aggregate-query results at a server (Section 4.4). The
// EJB specification allows this soft state to live inside stateless session
// beans, which is where the applications incorporate it. Keys follow the
// convention "<queryName>:<param>", so invalidation by query name uses the
// "<queryName>:" prefix.
type QueryCache struct {
	srv   *Server
	name  string
	fetch QueryFetch

	entries map[string]queryEntry
	hits    int64
	misses  int64
	refresh int64
	pushed  int64

	// ttl, when positive, bounds how long an entry is served without a
	// refetch; staleMaxAge, when positive, lets a failed refetch fall
	// back to the cached value while it is younger than the bound
	// (graceful degradation during WAN outages).
	ttl         time.Duration
	staleMaxAge time.Duration
	staleServes int64

	mHits    *metrics.Counter
	mMisses  *metrics.Counter
	mRefresh *metrics.Counter
	mPushed  *metrics.Counter
	// Registered lazily by SetServeStale so degradation-free runs export
	// byte-identical metric snapshots.
	mStale    *metrics.Counter
	mStaleAge *metrics.Histogram
}

type queryEntry struct {
	result   any
	stale    bool
	loadedAt time.Duration
}

// NewQueryCache creates a query cache owned by srv. fetch may be nil for
// strictly push-fed caches.
func NewQueryCache(srv *Server, name string, fetch QueryFetch) *QueryCache {
	reg := srv.Env().Metrics()
	return &QueryCache{
		srv:      srv,
		name:     name,
		fetch:    fetch,
		entries:  make(map[string]queryEntry),
		mHits:    reg.Counter("container_querycache_hits_total"),
		mMisses:  reg.Counter("container_querycache_misses_total"),
		mRefresh: reg.Counter("container_querycache_refresh_total"),
		mPushed:  reg.Counter("container_querycache_pushed_total"),
	}
}

// Name returns the cache's name.
func (qc *QueryCache) Name() string { return qc.name }

// SetTTL bounds entry freshness: entries older than ttl are refetched on
// access (0 disables, the default).
func (qc *QueryCache) SetTTL(ttl time.Duration) { qc.ttl = ttl }

// SetServeStale enables graceful degradation: when a refetch fails (the
// central server is unreachable) and a previously cached value younger than
// maxAge exists, Get serves the stale value instead of erroring.
func (qc *QueryCache) SetServeStale(maxAge time.Duration) {
	qc.staleMaxAge = maxAge
	if maxAge > 0 && qc.mStale == nil {
		reg := qc.srv.Env().Metrics()
		qc.mStale = reg.Counter("container_stale_serves_total")
		qc.mStaleAge = reg.Histogram("container_stale_serve_age_ns")
	}
}

// StaleServes returns the number of reads served from stale entries.
func (qc *QueryCache) StaleServes() int64 { return qc.staleServes }

// Hits, Misses, Pushed report cache behavior.
func (qc *QueryCache) Hits() int64   { return qc.hits }
func (qc *QueryCache) Misses() int64 { return qc.misses }
func (qc *QueryCache) Pushed() int64 { return qc.pushed }

// Size returns the number of cached query results.
func (qc *QueryCache) Size() int { return len(qc.entries) }

// Get returns the cached result for key, fetching on a miss or after a pull
// invalidation.
func (qc *QueryCache) Get(p *sim.Proc, key string) (any, error) {
	now := qc.srv.Env().Now()
	e, ok := qc.entries[key]
	expired := ok && qc.ttl > 0 && now-e.loadedAt >= qc.ttl
	if ok && !e.stale && !expired {
		qc.hits++
		qc.mHits.Inc()
		endHit := trace.Opf(p, "cache", qc.srv.name, "", trace.CauseService, "hit ", qc.name, "")
		qc.srv.Compute(p, qc.srv.costs.CacheHitCPU)
		endHit()
		return e.result, nil
	}
	// Misses and refreshes run the fetch path (the facade's remote query or
	// local SQL), which contributes its own spans under this one.
	defer trace.Opf(p, "cache", qc.srv.name, "", trace.CauseService, "fetch ", qc.name, "")()
	if qc.fetch == nil {
		return nil, fmt.Errorf("query cache %s: no entry for %q and no fetch path", qc.name, key)
	}
	if ok {
		qc.refresh++
		qc.mRefresh.Inc()
	} else {
		qc.misses++
		qc.mMisses.Inc()
	}
	v, err := qc.fetch(p, key)
	if err != nil {
		// Serve-stale degradation: a refetch that cannot reach the
		// central server falls back to the cached value while it is
		// younger than the staleness bound.
		if ok && qc.staleMaxAge > 0 {
			if age := p.Now() - e.loadedAt; age <= qc.staleMaxAge {
				qc.staleServes++
				qc.mStale.Inc()
				qc.mStaleAge.Observe(age)
				return e.result, nil
			}
		}
		return nil, fmt.Errorf("query cache %s fetch %q: %w", qc.name, key, err)
	}
	qc.entries[key] = queryEntry{result: v, loadedAt: p.Now()}
	return v, nil
}

// Put stores a result directly (warm-up, or computing on the fly).
func (qc *QueryCache) Put(key string, v any) {
	qc.entries[key] = queryEntry{result: v, loadedAt: qc.srv.Env().Now()}
}

// InvalidatePrefix marks every entry whose key starts with prefix stale
// (pull mode). Use "<queryName>:" to drop one query's results, or "" to
// drop everything.
func (qc *QueryCache) InvalidatePrefix(prefix string) int {
	n := 0
	for k, e := range qc.entries {
		if strings.HasPrefix(k, prefix) && !e.stale {
			e.stale = true
			qc.entries[k] = e
			n++
		}
	}
	return n
}

// ApplyPush installs a fresh result pushed from the main server (push mode:
// readers are never penalized).
func (qc *QueryCache) ApplyPush(key string, v any) {
	qc.pushed++
	qc.mPushed.Inc()
	qc.entries[key] = queryEntry{result: v, loadedAt: qc.srv.Env().Now()}
}

// QueryInvalidation adapts a QueryCache to the Applier interface so an
// UpdaterFacade can invalidate (or recompute) affected queries when an
// entity update arrives. Affected maps an update to the cache-key prefixes
// it invalidates; Recompute, when non-nil, turns the update into fresh
// (key, result) pairs to push instead of invalidating.
type QueryInvalidation struct {
	Cache     *QueryCache
	Affected  func(u Update) []string
	Recompute func(u Update) map[string]any
}

// ApplyUpdate implements Applier.
func (qi *QueryInvalidation) ApplyUpdate(u Update) {
	if qi.Recompute != nil {
		for k, v := range qi.Recompute(u) {
			qi.Cache.ApplyPush(k, v)
		}
		return
	}
	if qi.Affected == nil {
		return
	}
	for _, prefix := range qi.Affected(u) {
		qi.Cache.InvalidatePrefix(prefix)
	}
}
