package container

import (
	"errors"
	"testing"
	"time"

	"wadeploy/internal/jms"
	"wadeploy/internal/rmi"
	"wadeploy/internal/sim"
	"wadeploy/internal/simnet"
	"wadeploy/internal/sqldb"
	"wadeploy/internal/web"
)

// fixture assembles a main+edge deployment over a 100ms-one-way WAN with the
// database co-located with main.
type fixture struct {
	env  *sim.Env
	net  *simnet.Network
	db   *sqldb.DB
	rt   *rmi.Runtime
	jms  *jms.Provider
	main *Server
	edge *Server
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	env := sim.NewEnv(7)
	net := simnet.New(env)
	for _, id := range []string{"main", "edge"} {
		if _, err := net.AddNode(id, 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.AddLink("main", "edge", 100*time.Millisecond, 1e12); err != nil {
		t.Fatal(err)
	}
	db := sqldb.New()
	if _, err := db.Exec(`CREATE TABLE inventory (item_id TEXT PRIMARY KEY, qty INT NOT NULL)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO inventory VALUES ('i1', 10), ('i2', 5)`); err != nil {
		t.Fatal(err)
	}
	rt := rmi.NewRuntime(net, rmi.DefaultOptions)
	provider, err := jms.NewProvider(net, "main", jms.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *Server {
		s, err := NewServer(Config{
			Name:   name,
			DBNode: "main",
			DB:     db,
			Net:    net,
			RMI:    rt,
			JMS:    provider,
			Web:    web.DefaultOptions,
			Costs:  DefaultCostModel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return &fixture{env: env, net: net, db: db, rt: rt, jms: provider, main: mk("main"), edge: mk("edge")}
}

// run spawns fn as a process and drives the simulation to completion.
func (f *fixture) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	f.env.Spawn("test", fn)
	f.env.RunAll()
}

func TestStatelessBeanLocalAndRemote(t *testing.T) {
	f := newFixture(t)
	if _, err := DeployStateless(f.main, "Catalog", map[string]Method{
		"getItem": func(p *sim.Proc, inv *Invocation) (any, error) {
			return "item:" + inv.StringArg(0), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		// Local call from main.
		stub, err := f.main.StubFor(p, "main", "Catalog")
		if err != nil {
			t.Errorf("stub: %v", err)
			return
		}
		start := p.Now()
		v, err := stub.Invoke(p, "getItem", "i1")
		if err != nil || v != "item:i1" {
			t.Errorf("local invoke: %v, %v", v, err)
		}
		localCost := p.Now() - start
		if localCost >= 50*time.Millisecond {
			t.Errorf("local call cost %v, want well under a WAN RTT", localCost)
		}
		// Remote call from edge crosses the WAN.
		estub, err := f.edge.StubFor(p, "main", "Catalog")
		if err != nil {
			t.Errorf("stub: %v", err)
			return
		}
		start = p.Now()
		if _, err := estub.Invoke(p, "getItem", "i1"); err != nil {
			t.Errorf("remote invoke: %v", err)
		}
		remoteCost := p.Now() - start
		if remoteCost < 200*time.Millisecond {
			t.Errorf("remote call cost %v, want >= RTT", remoteCost)
		}
	})
}

func TestStatelessUnknownMethod(t *testing.T) {
	f := newFixture(t)
	if _, err := DeployStateless(f.main, "Catalog", map[string]Method{}); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		stub, _ := f.main.StubFor(p, "main", "Catalog")
		if _, err := stub.Invoke(p, "nope"); !errors.Is(err, ErrNoSuchMethod) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestStatefulBeanKeepsPerSessionState(t *testing.T) {
	f := newFixture(t)
	cart, err := DeployStateful(f.edge, "ShoppingCart", map[string]Method{
		"add": func(p *sim.Proc, inv *Invocation) (any, error) {
			n := inv.State["count"].AsInt()
			inv.State["count"] = sqldb.Int(n + 1)
			return n + 1, nil
		},
		"count": func(p *sim.Proc, inv *Invocation) (any, error) {
			return inv.State["count"].AsInt(), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		stub, _ := f.edge.StubFor(p, "edge", "ShoppingCart")
		for i := 0; i < 3; i++ {
			if _, err := stub.Invoke(p, "add", "sess-A"); err != nil {
				t.Errorf("add: %v", err)
			}
		}
		if _, err := stub.Invoke(p, "add", "sess-B"); err != nil {
			t.Errorf("add: %v", err)
		}
		va, _ := stub.Invoke(p, "count", "sess-A")
		vb, _ := stub.Invoke(p, "count", "sess-B")
		if va.(int64) != 3 || vb.(int64) != 1 {
			t.Errorf("counts = %v, %v; want 3, 1", va, vb)
		}
	})
	if cart.Instances() != 2 {
		t.Fatalf("instances = %d", cart.Instances())
	}
	cart.Remove("sess-A")
	if cart.Instances() != 1 {
		t.Fatalf("instances after remove = %d", cart.Instances())
	}
}

func TestStatefulRequiresSessionKey(t *testing.T) {
	f := newFixture(t)
	if _, err := DeployStateful(f.edge, "Cart", map[string]Method{
		"m": func(p *sim.Proc, inv *Invocation) (any, error) { return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		stub, _ := f.edge.StubFor(p, "edge", "Cart")
		if _, err := stub.Invoke(p, "m"); err == nil {
			t.Error("missing session key accepted")
		}
		if _, err := stub.Invoke(p, "m", 42); err == nil {
			t.Error("non-string session key accepted")
		}
	})
}

func TestRWEntityCRUDAgainstDB(t *testing.T) {
	f := newFixture(t)
	inv, err := DeployRWEntity(f.main, "InventoryRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		st, err := inv.Load(p, sqldb.Str("i1"))
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		if st["qty"].AsInt() != 10 {
			t.Errorf("qty = %v", st["qty"])
		}
		if _, err := inv.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(9)}); err != nil {
			t.Errorf("update: %v", err)
		}
		if err := inv.Insert(p, State{"item_id": sqldb.Str("i3"), "qty": sqldb.Int(7)}); err != nil {
			t.Errorf("insert: %v", err)
		}
		if err := inv.Delete(p, sqldb.Str("i2")); err != nil {
			t.Errorf("delete: %v", err)
		}
		states, err := inv.FindWhere(p, "qty > ?", sqldb.Int(0))
		if err != nil {
			t.Errorf("find: %v", err)
		}
		if len(states) != 2 {
			t.Errorf("find returned %d states", len(states))
		}
		if _, err := inv.Load(p, sqldb.Str("i2")); !errors.Is(err, ErrNoSuchEntity) {
			t.Errorf("load deleted: %v", err)
		}
		if err := inv.Delete(p, sqldb.Str("ghost")); !errors.Is(err, ErrNoSuchEntity) {
			t.Errorf("delete ghost: %v", err)
		}
	})
	if inv.Writes() != 3 {
		t.Fatalf("writes = %d", inv.Writes())
	}
}

func TestSyncPropagatorBlocksWriter(t *testing.T) {
	f := newFixture(t)
	rw, err := DeployRWEntity(f.main, "InventoryRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	ro, err := DeployROEntity(f.edge, "InventoryRO", "InventoryRW", nil)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := DeployUpdaterFacade(f.edge, "Updater")
	if err != nil {
		t.Fatal(err)
	}
	uf.Register("InventoryRW", ro)
	rw.AddPropagator(NewSyncPropagator(f.main, []SyncTarget{{Server: "edge", Facade: "Updater"}}, 512))
	var writeCost time.Duration
	f.run(t, func(p *sim.Proc) {
		start := p.Now()
		if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(3)}); err != nil {
			t.Errorf("update: %v", err)
		}
		writeCost = p.Now() - start
		// Zero staleness: the replica must already hold the new value.
		st, err := ro.Get(p, sqldb.Str("i1"))
		if err != nil {
			t.Errorf("ro get: %v", err)
			return
		}
		if st["qty"].AsInt() != 3 {
			t.Errorf("replica qty = %v, want 3 immediately after write", st["qty"])
		}
	})
	if writeCost < 200*time.Millisecond {
		t.Fatalf("sync write cost %v, want >= WAN RTT (writer must block)", writeCost)
	}
	if uf.Applied() != 1 || ro.Pushes() != 1 {
		t.Fatalf("applied=%d pushes=%d", uf.Applied(), ro.Pushes())
	}
}

func TestAsyncPropagatorDoesNotBlockWriter(t *testing.T) {
	f := newFixture(t)
	rw, err := DeployRWEntity(f.main, "InventoryRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	ro, err := DeployROEntity(f.edge, "InventoryRO", "InventoryRW", nil)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := DeployUpdaterFacade(f.edge, "Updater")
	if err != nil {
		t.Fatal(err)
	}
	uf.Register("InventoryRW", ro)
	ap, err := NewAsyncPropagator(f.main, "updates", 512)
	if err != nil {
		t.Fatal(err)
	}
	rw.AddPropagator(ap)
	if _, err := DeployUpdateSubscriber(f.edge, "UpdateSubscriber", "updates", uf); err != nil {
		t.Fatal(err)
	}
	var writeCost time.Duration
	f.run(t, func(p *sim.Proc) {
		start := p.Now()
		if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(2)}); err != nil {
			t.Errorf("update: %v", err)
		}
		writeCost = p.Now() - start
	})
	if writeCost >= 100*time.Millisecond {
		t.Fatalf("async write cost %v; writer must not wait for WAN delivery", writeCost)
	}
	// After the simulation drains, the update must have arrived.
	if ro.Pushes() != 1 {
		t.Fatalf("pushes = %d, want 1 (delivered asynchronously)", ro.Pushes())
	}
	st := State{}
	_ = st
	if f.jms.Delivered() != 1 {
		t.Fatalf("jms delivered = %d", f.jms.Delivered())
	}
}

func TestROEntityHitMissAndPullRefresh(t *testing.T) {
	f := newFixture(t)
	rw, err := DeployRWEntity(f.main, "InventoryRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	fetches := 0
	ro, err := DeployROEntity(f.edge, "InventoryRO", "InventoryRW", func(p *sim.Proc, pk sqldb.Value) (State, error) {
		fetches++
		return rw.Load(p, pk) // stands in for the remote façade call
	})
	if err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		// Cold miss fetches.
		st, err := ro.Get(p, sqldb.Str("i1"))
		if err != nil || st["qty"].AsInt() != 10 {
			t.Errorf("get: %v, %v", st, err)
		}
		// Second read is a local hit.
		before := p.Now()
		if _, err := ro.Get(p, sqldb.Str("i1")); err != nil {
			t.Errorf("get: %v", err)
		}
		if hitCost := p.Now() - before; hitCost >= time.Millisecond {
			t.Errorf("hit cost %v, want sub-millisecond local read", hitCost)
		}
		// Pull invalidation forces a refresh on next read.
		ro.Invalidate(sqldb.Str("i1"))
		if _, err := ro.Get(p, sqldb.Str("i1")); err != nil {
			t.Errorf("get after invalidate: %v", err)
		}
	})
	if fetches != 2 {
		t.Fatalf("fetches = %d, want 2 (cold miss + pull refresh)", fetches)
	}
	if ro.Hits() != 1 || ro.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", ro.Hits(), ro.Misses())
	}
}

func TestROEntityWithoutFetchPath(t *testing.T) {
	f := newFixture(t)
	ro, err := DeployROEntity(f.edge, "InventoryRO", "InventoryRW", nil)
	if err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		if _, err := ro.Get(p, sqldb.Str("i1")); !errors.Is(err, ErrNoSuchEntity) {
			t.Errorf("err = %v", err)
		}
		ro.ApplyUpdate(Update{Bean: "InventoryRW", PK: sqldb.Str("i1"), State: State{"qty": sqldb.Int(4)}})
		st, err := ro.Get(p, sqldb.Str("i1"))
		if err != nil || st["qty"].AsInt() != 4 {
			t.Errorf("get after push: %v, %v", st, err)
		}
		// Deletion push removes the entry.
		ro.ApplyUpdate(Update{Bean: "InventoryRW", PK: sqldb.Str("i1"), Deleted: true})
		if _, err := ro.Get(p, sqldb.Str("i1")); !errors.Is(err, ErrNoSuchEntity) {
			t.Errorf("err after delete push = %v", err)
		}
	})
}

func TestROEntityPreloadAndInvalidateAll(t *testing.T) {
	f := newFixture(t)
	fetches := 0
	ro, err := DeployROEntity(f.edge, "RO", "RW", func(p *sim.Proc, pk sqldb.Value) (State, error) {
		fetches++
		return State{"v": sqldb.Int(99)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ro.Preload(sqldb.Str("a"), State{"v": sqldb.Int(1)})
	ro.Preload(sqldb.Str("b"), State{"v": sqldb.Int(2)})
	if ro.Cached() != 2 {
		t.Fatalf("cached = %d", ro.Cached())
	}
	f.run(t, func(p *sim.Proc) {
		if st, _ := ro.Get(p, sqldb.Str("a")); st["v"].AsInt() != 1 {
			t.Error("preload not served")
		}
		ro.InvalidateAll()
		if st, _ := ro.Get(p, sqldb.Str("a")); st["v"].AsInt() != 99 {
			t.Error("stale entry served after InvalidateAll")
		}
	})
	if fetches != 1 {
		t.Fatalf("fetches = %d", fetches)
	}
}

func TestQueryCache(t *testing.T) {
	f := newFixture(t)
	fetches := 0
	qc := NewQueryCache(f.edge, "catalogQueries", func(p *sim.Proc, key string) (any, error) {
		fetches++
		return "result-for-" + key, nil
	})
	f.run(t, func(p *sim.Proc) {
		v, err := qc.Get(p, "productsByCategory:FISH")
		if err != nil || v != "result-for-productsByCategory:FISH" {
			t.Errorf("get: %v, %v", v, err)
		}
		if _, err := qc.Get(p, "productsByCategory:FISH"); err != nil {
			t.Errorf("get: %v", err)
		}
		if qc.Hits() != 1 || qc.Misses() != 1 {
			t.Errorf("hits=%d misses=%d", qc.Hits(), qc.Misses())
		}
		// Prefix invalidation hits only matching keys.
		qc.Put("itemsByProduct:P1", "x")
		n := qc.InvalidatePrefix("productsByCategory:")
		if n != 1 {
			t.Errorf("invalidated %d, want 1", n)
		}
		if _, err := qc.Get(p, "itemsByProduct:P1"); err != nil {
			t.Errorf("unaffected key should still hit: %v", err)
		}
		if _, err := qc.Get(p, "productsByCategory:FISH"); err != nil {
			t.Errorf("refetch: %v", err)
		}
		if fetches != 2 {
			t.Errorf("fetches = %d, want 2", fetches)
		}
		// Push refresh installs without fetch.
		qc.ApplyPush("productsByCategory:DOGS", "pushed")
		v, _ = qc.Get(p, "productsByCategory:DOGS")
		if v != "pushed" {
			t.Errorf("pushed value = %v", v)
		}
	})
	if qc.Size() != 3 || qc.Pushed() != 1 {
		t.Fatalf("size=%d pushed=%d", qc.Size(), qc.Pushed())
	}
}

func TestQueryCacheNoFetchPath(t *testing.T) {
	f := newFixture(t)
	qc := NewQueryCache(f.edge, "qc", nil)
	f.run(t, func(p *sim.Proc) {
		if _, err := qc.Get(p, "missing:1"); err == nil {
			t.Error("miss without fetch path should fail")
		}
	})
}

func TestQueryInvalidationApplier(t *testing.T) {
	f := newFixture(t)
	qc := NewQueryCache(f.edge, "qc", nil)
	qc.Put("itemsByProduct:P1", "old")
	qc.Put("itemsByProduct:P2", "other")
	qi := &QueryInvalidation{
		Cache: qc,
		Affected: func(u Update) []string {
			return []string{"itemsByProduct:P1"}
		},
	}
	qi.ApplyUpdate(Update{Bean: "ItemRW", PK: sqldb.Str("I-1")})
	f.run(t, func(p *sim.Proc) {
		if _, err := qc.Get(p, "itemsByProduct:P2"); err != nil {
			t.Errorf("unaffected entry lost: %v", err)
		}
		if _, err := qc.Get(p, "itemsByProduct:P1"); err == nil {
			t.Error("stale entry served after invalidation")
		}
	})
	// Recompute mode pushes fresh values instead.
	qi2 := &QueryInvalidation{
		Cache: qc,
		Recompute: func(u Update) map[string]any {
			return map[string]any{"itemsByProduct:P1": "fresh"}
		},
	}
	qi2.ApplyUpdate(Update{Bean: "ItemRW", PK: sqldb.Str("I-1")})
	f.run(t, func(p *sim.Proc) {
		v, err := qc.Get(p, "itemsByProduct:P1")
		if err != nil || v != "fresh" {
			t.Errorf("recompute push: %v, %v", v, err)
		}
	})
}

func TestJDBCRoundTripChargedForRemoteDB(t *testing.T) {
	f := newFixture(t)
	var localCost, remoteCost time.Duration
	f.run(t, func(p *sim.Proc) {
		start := p.Now()
		if _, err := f.main.SQL(p, `SELECT * FROM inventory WHERE item_id = ?`, sqldb.Str("i1")); err != nil {
			t.Errorf("main sql: %v", err)
		}
		localCost = p.Now() - start
		start = p.Now()
		if _, err := f.edge.SQL(p, `SELECT * FROM inventory WHERE item_id = ?`, sqldb.Str("i1")); err != nil {
			t.Errorf("edge sql: %v", err)
		}
		remoteCost = p.Now() - start
	})
	if localCost >= 10*time.Millisecond {
		t.Fatalf("local SQL cost %v, want small", localCost)
	}
	if remoteCost < 200*time.Millisecond {
		t.Fatalf("remote JDBC cost %v, want >= WAN RTT", remoteCost)
	}
	if f.main.SQLStatements() != 1 || f.edge.SQLStatements() != 1 {
		t.Fatalf("statement counts: %d, %d", f.main.SQLStatements(), f.edge.SQLStatements())
	}
}

func TestDuplicateBeanRejected(t *testing.T) {
	f := newFixture(t)
	if _, err := DeployStateless(f.main, "X", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := DeployStateless(f.main, "X", nil); err == nil {
		t.Fatal("duplicate deployment accepted")
	}
	if _, err := DeployRWEntity(f.main, "X", "inventory", "item_id"); err == nil {
		t.Fatal("duplicate entity deployment accepted")
	}
	if !f.main.HasBean("X") || f.main.Beans() != 1 {
		t.Fatal("bean registry inconsistent")
	}
}

func TestExtendedDescriptorValidate(t *testing.T) {
	good := &ExtendedDescriptor{
		Topic: "updates",
		Replicas: []ReplicaSpec{
			{Bean: "ItemRW", Update: AsyncUpdate, Refresh: PushRefresh},
			{Bean: "UserRW", Update: SyncUpdate, Refresh: PullRefresh},
		},
		CachedQueries: []CachedQuerySpec{
			{Name: "itemsByProduct", InvalidatedBy: []string{"ItemRW"}},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}
	bad := []*ExtendedDescriptor{
		{Replicas: []ReplicaSpec{{Bean: "", Update: SyncUpdate, Refresh: PushRefresh}}},
		{Replicas: []ReplicaSpec{
			{Bean: "A", Update: SyncUpdate, Refresh: PushRefresh},
			{Bean: "A", Update: SyncUpdate, Refresh: PushRefresh},
		}},
		{Replicas: []ReplicaSpec{{Bean: "A", Refresh: PushRefresh}}},
		{Replicas: []ReplicaSpec{{Bean: "A", Update: SyncUpdate}}},
		{Replicas: []ReplicaSpec{{Bean: "A", Update: AsyncUpdate, Refresh: PushRefresh}}}, // no topic
		{CachedQueries: []CachedQuerySpec{{Name: ""}}},
		{CachedQueries: []CachedQuerySpec{{Name: "q"}, {Name: "q"}}},
	}
	for i, d := range bad {
		if err := d.Validate(); !errors.Is(err, ErrBadDescriptor) {
			t.Errorf("bad[%d]: err = %v, want ErrBadDescriptor", i, err)
		}
	}
}

func TestMDBRequiresJMS(t *testing.T) {
	f := newFixture(t)
	noJMS, err := NewServer(Config{
		Name: "edge", DBNode: "main", DB: f.db, Net: f.net, RMI: f.rt,
		Web: web.DefaultOptions, Costs: DefaultCostModel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeployMDB(noJMS, "mdb", "t", nil); err == nil {
		t.Fatal("MDB without JMS accepted")
	}
	if _, err := NewAsyncPropagator(noJMS, "t", 0); err == nil {
		t.Fatal("async propagator without JMS accepted")
	}
}

func TestServerValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := NewServer(Config{Name: "nowhere", DBNode: "main", DB: f.db, Net: f.net, RMI: f.rt, Web: web.DefaultOptions}); err == nil {
		t.Fatal("server on missing node accepted")
	}
	if _, err := NewServer(Config{Name: "main", DBNode: "nowhere", DB: f.db, Net: f.net, RMI: f.rt, Web: web.DefaultOptions}); err == nil {
		t.Fatal("server with missing DB node accepted")
	}
}

func TestBeanKindStrings(t *testing.T) {
	if StatelessSession.String() != "stateless-session" ||
		StatefulSession.String() != "stateful-session" ||
		Entity.String() != "entity" ||
		MessageDriven.String() != "message-driven" {
		t.Fatal("BeanKind strings wrong")
	}
	if SyncUpdate.String() != "sync" || AsyncUpdate.String() != "async" {
		t.Fatal("UpdateMode strings wrong")
	}
	if PushRefresh.String() != "push" || PullRefresh.String() != "pull" {
		t.Fatal("RefreshMode strings wrong")
	}
}

func TestStatefulSessionReplicationFailover(t *testing.T) {
	f := newFixture(t)
	methods := func() map[string]Method {
		return map[string]Method{
			"add": func(p *sim.Proc, inv *Invocation) (any, error) {
				inv.State["count"] = sqldb.Int(inv.State["count"].AsInt() + 1)
				return inv.State["count"].AsInt(), nil
			},
			"count": func(p *sim.Proc, inv *Invocation) (any, error) {
				return inv.State["count"].AsInt(), nil
			},
		}
	}
	edgeCart, err := DeployStateful(f.edge, "Cart", methods())
	if err != nil {
		t.Fatal(err)
	}
	mainCart, err := DeployStateful(f.main, "Cart", methods())
	if err != nil {
		t.Fatal(err)
	}
	edgeCart.ReplicateTo("main")
	var plainCost, replCost time.Duration
	f.run(t, func(p *sim.Proc) {
		// Baseline: un-replicated call on main.
		mstub, _ := f.main.StubFor(p, "main", "Cart")
		start := p.Now()
		if _, err := mstub.Invoke(p, "add", "other"); err != nil {
			t.Errorf("add: %v", err)
		}
		plainCost = p.Now() - start
		// Replicated calls on edge push state across the WAN.
		estub, _ := f.edge.StubFor(p, "edge", "Cart")
		start = p.Now()
		for i := 0; i < 3; i++ {
			if _, err := estub.Invoke(p, "add", "sess-A"); err != nil {
				t.Errorf("add: %v", err)
			}
		}
		replCost = (p.Now() - start) / 3
		// Failover: the client re-homes to main and resumes the session.
		if !mainCart.Resume("sess-A") {
			t.Error("session not replicated to buddy")
		}
		v, err := mstub.Invoke(p, "count", "sess-A")
		if err != nil || v.(int64) != 3 {
			t.Errorf("resumed count = %v, %v; want 3", v, err)
		}
	})
	if edgeCart.Replicated() != 3 {
		t.Fatalf("replicated = %d", edgeCart.Replicated())
	}
	// WAN session replication makes every mutating call pay a push — the
	// reason the paper calls it a LAN-scale mechanism.
	if replCost < plainCost+150*time.Millisecond {
		t.Fatalf("replicated call %v vs plain %v: WAN push not visible", replCost, plainCost)
	}
}

func TestSessionReplicationAcrossPartitionFailsCall(t *testing.T) {
	f := newFixture(t)
	cart, err := DeployStateful(f.edge, "Cart", map[string]Method{
		"add": func(p *sim.Proc, inv *Invocation) (any, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeployStateful(f.main, "Cart", map[string]Method{}); err != nil {
		t.Fatal(err)
	}
	cart.ReplicateTo("main")
	if err := f.net.SetLinkState("main", "edge", false); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		stub, _ := f.edge.StubFor(p, "edge", "Cart")
		if _, err := stub.Invoke(p, "add", "s"); err == nil {
			t.Error("replicated call across partition succeeded")
		}
	})
}

func TestLookupUncachedPaysEveryTime(t *testing.T) {
	f := newFixture(t)
	if _, err := DeployStateless(f.main, "Svc", map[string]Method{
		"m": func(p *sim.Proc, inv *Invocation) (any, error) { return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		// Two uncached lookups both pay the JNDI round trip.
		start := p.Now()
		if _, err := f.edge.LookupUncached(p, "main", "Svc"); err != nil {
			t.Errorf("lookup: %v", err)
		}
		first := p.Now() - start
		start = p.Now()
		if _, err := f.edge.LookupUncached(p, "main", "Svc"); err != nil {
			t.Errorf("lookup: %v", err)
		}
		second := p.Now() - start
		if first < 150*time.Millisecond || second < 150*time.Millisecond {
			t.Errorf("uncached lookups cost %v/%v, want RTT each", first, second)
		}
	})
}
