package container

import (
	"errors"
	"testing"
	"time"

	"wadeploy/internal/sim"
	"wadeploy/internal/sqldb"
)

func TestPartitionSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec *PartitionSpec
		ok   bool
	}{
		{"nil spec", nil, true},
		{"hash", &PartitionSpec{Scheme: HashPartition, Partitions: 4}, true},
		{"range", &PartitionSpec{Scheme: RangePartition, Partitions: 3, Bounds: []string{"g", "p"}}, true},
		{"zero partitions", &PartitionSpec{Scheme: HashPartition}, false},
		{"hash with bounds", &PartitionSpec{Scheme: HashPartition, Partitions: 2, Bounds: []string{"m"}}, false},
		{"range bound count", &PartitionSpec{Scheme: RangePartition, Partitions: 3, Bounds: []string{"m"}}, false},
		{"range unsorted", &PartitionSpec{Scheme: RangePartition, Partitions: 3, Bounds: []string{"p", "g"}}, false},
		{"range duplicate", &PartitionSpec{Scheme: RangePartition, Partitions: 3, Bounds: []string{"g", "g"}}, false},
		{"unknown scheme", &PartitionSpec{Partitions: 2}, false},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: expected error", tc.name)
			} else if !errors.Is(err, ErrBadDescriptor) {
				t.Errorf("%s: error %v not ErrBadDescriptor", tc.name, err)
			}
		}
	}
}

func TestHashPartitionDeterministicAndInRange(t *testing.T) {
	spec := &PartitionSpec{Scheme: HashPartition, Partitions: 7}
	hit := make(map[int]bool)
	for _, k := range []string{"i1", "i2", "cat-01", "prod-0042", "user:9", "x"} {
		p := spec.PartitionForKey(k)
		if p < 0 || p >= spec.Partitions {
			t.Fatalf("key %q mapped outside [0,%d): %d", k, spec.Partitions, p)
		}
		if q := spec.PartitionFor(sqldb.Str(k)); q != p {
			t.Fatalf("key %q: PartitionFor %d != PartitionForKey %d", k, q, p)
		}
		hit[p] = true
	}
	if len(hit) < 2 {
		t.Fatalf("all sample keys hashed to one partition: %v", hit)
	}
}

func TestRangePartitionBounds(t *testing.T) {
	spec := &PartitionSpec{Scheme: RangePartition, Partitions: 3, Bounds: []string{"g", "p"}}
	for key, want := range map[string]int{
		"a": 0, "f": 0,
		"g": 1, // bounds are upper-exclusive: a key equal to a bound moves up
		"m": 1, "o": 1,
		"p": 2, "z": 2,
	} {
		if got := spec.PartitionForKey(key); got != want {
			t.Errorf("key %q -> partition %d, want %d", key, got, want)
		}
	}
}

func TestPartitionedReplicaOwnership(t *testing.T) {
	f := newFixture(t)
	fetches := 0
	ro, err := DeployROEntity(f.edge, "RO", "RW", func(p *sim.Proc, pk sqldb.Value) (State, error) {
		fetches++
		return State{"v": sqldb.Int(99)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two range partitions split at "i2"; the edge owns only partition 0
	// (keys below "i2", i.e. "i1").
	spec := &PartitionSpec{Scheme: RangePartition, Partitions: 2, Bounds: []string{"i2"}}
	ro.SetOwnership(spec.Owns([]int{0}))

	// Preload drops unowned keys.
	ro.Preload(sqldb.Str("i1"), State{"v": sqldb.Int(1)})
	ro.Preload(sqldb.Str("i2"), State{"v": sqldb.Int(2)})
	if ro.Cached() != 1 {
		t.Fatalf("cached = %d, want 1 (unowned preload dropped)", ro.Cached())
	}
	if _, ok := ro.Peek(sqldb.Str("i2")); ok {
		t.Fatal("unowned key entered the cache via Preload")
	}

	// Pushed updates for unowned keys are dropped before any accounting.
	ro.ApplyUpdate(Update{Bean: "RW", PK: sqldb.Str("i2"), State: State{"v": sqldb.Int(3)}})
	if ro.Pushes() != 0 || ro.Cached() != 1 {
		t.Fatalf("unowned push applied: pushes=%d cached=%d", ro.Pushes(), ro.Cached())
	}
	ro.ApplyUpdate(Update{Bean: "RW", PK: sqldb.Str("i1"), State: State{"v": sqldb.Int(4)}})
	if ro.Pushes() != 1 {
		t.Fatalf("owned push not applied: pushes=%d", ro.Pushes())
	}

	f.run(t, func(p *sim.Proc) {
		// Owned key: served locally, no fetch.
		if st, err := ro.Get(p, sqldb.Str("i1")); err != nil || st["v"].AsInt() != 4 {
			t.Errorf("owned get: %v, %v", st, err)
		}
		// Unowned key: remote get every time, never cached.
		for i := 0; i < 2; i++ {
			if st, err := ro.Get(p, sqldb.Str("i2")); err != nil || st["v"].AsInt() != 99 {
				t.Errorf("unowned get: %v, %v", st, err)
			}
		}
	})
	if fetches != 2 {
		t.Fatalf("fetches = %d, want 2 (one per unowned read)", fetches)
	}
	if ro.RemoteGets() != 2 {
		t.Fatalf("remote gets = %d, want 2", ro.RemoteGets())
	}
	if ro.Hits() != 1 || ro.Misses() != 0 {
		t.Fatalf("hits=%d misses=%d (unowned reads must not touch hit/miss accounting)", ro.Hits(), ro.Misses())
	}
	if ro.Cached() != 1 {
		t.Fatalf("cached = %d after unowned reads, want 1", ro.Cached())
	}
}

func TestSyncPropagatorTargetFilter(t *testing.T) {
	f := newFixture(t)
	rw, err := DeployRWEntity(f.main, "InventoryRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	ro, err := DeployROEntity(f.edge, "InventoryRO", "InventoryRW", nil)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := DeployUpdaterFacade(f.edge, "Updater")
	if err != nil {
		t.Fatal(err)
	}
	uf.Register("InventoryRW", ro)
	target := SyncTarget{Server: "edge", Facade: "Updater"}
	sp := NewSyncPropagator(f.main, []SyncTarget{target}, 512)
	spec := &PartitionSpec{Scheme: RangePartition, Partitions: 2, Bounds: []string{"i2"}}
	sp.SetTargetFilter(target, spec.UpdateFilter([]int{0}))
	rw.AddPropagator(sp)

	var outside time.Duration
	f.run(t, func(p *sim.Proc) {
		// A write outside the edge's partition slice: no push at all, so
		// the writer never pays the WAN round trip.
		start := p.Now()
		if _, err := rw.UpdateFields(p, sqldb.Str("i2"), State{"qty": sqldb.Int(1)}); err != nil {
			t.Errorf("update i2: %v", err)
		}
		outside = p.Now() - start
		// A write inside the slice propagates synchronously.
		if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(7)}); err != nil {
			t.Errorf("update i1: %v", err)
		}
	})
	if outside >= 100*time.Millisecond {
		t.Fatalf("out-of-slice write cost %v; filtered target must not be pushed", outside)
	}
	if uf.Applied() != 1 || ro.Pushes() != 1 {
		t.Fatalf("applied=%d pushes=%d, want 1/1 (only the owned write)", uf.Applied(), ro.Pushes())
	}
	if st, ok := ro.Peek(sqldb.Str("i1")); !ok || st["qty"].AsInt() != 7 {
		t.Fatalf("owned write not applied at replica: %v %v", st, ok)
	}
	if _, ok := ro.Peek(sqldb.Str("i2")); ok {
		t.Fatal("out-of-slice write reached the replica")
	}

	// Clearing the filter restores full propagation.
	sp.SetTargetFilter(target, nil)
	f.env.Spawn("test2", func(p *sim.Proc) {
		if _, err := rw.UpdateFields(p, sqldb.Str("i2"), State{"qty": sqldb.Int(9)}); err != nil {
			t.Errorf("update i2 unfiltered: %v", err)
		}
	})
	f.env.RunAll()
	if ro.Pushes() != 2 {
		t.Fatalf("pushes = %d after filter removal, want 2", ro.Pushes())
	}
}

// TestPartitionScopedServeStale pins the graceful-degradation contract under
// partitioning: when the central site is unreachable, an edge keeps serving
// its owned slice from stale local copies, while unowned keys — which are
// always remote gets — fail fast instead of silently serving nothing.
func TestPartitionScopedServeStale(t *testing.T) {
	f := newFixture(t)
	central := true
	ro, err := DeployROEntity(f.edge, "RO", "RW", func(p *sim.Proc, pk sqldb.Value) (State, error) {
		if !central {
			return nil, errors.New("central site unreachable")
		}
		return State{"v": sqldb.Int(99)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := &PartitionSpec{Scheme: RangePartition, Partitions: 2, Bounds: []string{"i2"}}
	ro.SetOwnership(spec.Owns([]int{0}))
	ro.SetServeStale(time.Hour)
	ro.Preload(sqldb.Str("i1"), State{"v": sqldb.Int(1)})

	f.run(t, func(p *sim.Proc) {
		central = false
		// Owned key, invalidated, refresh fails: served stale.
		ro.Invalidate(sqldb.Str("i1"))
		st, err := ro.Get(p, sqldb.Str("i1"))
		if err != nil || st["v"].AsInt() != 1 {
			t.Errorf("owned stale serve: %v, %v", st, err)
		}
		// Unowned key: remote get fails, and there is no stale fallback
		// because the edge never cached it.
		if _, err := ro.Get(p, sqldb.Str("i2")); err == nil {
			t.Error("unowned get succeeded with central site down")
		}
	})
	if ro.StaleServes() != 1 {
		t.Fatalf("stale serves = %d, want 1", ro.StaleServes())
	}
}

func TestDescriptorValidatesPartitionSpec(t *testing.T) {
	d := &ExtendedDescriptor{Replicas: []ReplicaSpec{{
		Bean: "Item", Update: SyncUpdate, Refresh: PushRefresh,
		Partition: &PartitionSpec{Scheme: RangePartition, Partitions: 2},
	}}}
	if err := d.Validate(); !errors.Is(err, ErrBadDescriptor) {
		t.Fatalf("err = %v, want ErrBadDescriptor (bad bounds)", err)
	}
	d.Replicas[0].Partition = &PartitionSpec{Scheme: HashPartition, Partitions: 4}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid partitioned descriptor rejected: %v", err)
	}
}
