package container_test

// The event-log replication invariant, tested as a property over seeded
// random write histories: replaying the coalesced log suffix from any sealed
// epoch onto that epoch's state reproduces direct application of every
// commit — even when a WAN partition injected mid-run drops the live
// asynchronous pushes. This file lives in the external test package because
// replog imports container (the in-package property tests cannot).

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"wadeploy/internal/container"
	"wadeploy/internal/faults"
	"wadeploy/internal/jms"
	"wadeploy/internal/replog"
	"wadeploy/internal/rmi"
	"wadeploy/internal/sim"
	"wadeploy/internal/simnet"
	"wadeploy/internal/sqldb"
	"wadeploy/internal/web"
)

func cloneRef(ref map[string]container.State) map[string]container.State {
	out := make(map[string]container.State, len(ref))
	for k, v := range ref {
		out[k] = v.Clone()
	}
	return out
}

func statesEqual(a, b container.State) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || sqldb.Compare(v, w) != 0 {
			return false
		}
	}
	return true
}

func TestPropertyLogReplayEquivalentToDirectApplication(t *testing.T) {
	for _, seed := range []int64{3, 17, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			env := sim.NewEnv(seed)
			net := simnet.New(env)
			for _, id := range []string{"main", "edge"} {
				if _, err := net.AddNode(id, 2); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := net.AddLink("main", "edge", 100*time.Millisecond, 1e12); err != nil {
				t.Fatal(err)
			}
			db := sqldb.New()
			if _, err := db.Exec(`CREATE TABLE inventory (item_id TEXT PRIMARY KEY, qty INT NOT NULL)`); err != nil {
				t.Fatal(err)
			}
			rt := rmi.NewRuntime(net, rmi.DefaultOptions)
			provider, err := jms.NewProvider(net, "main", jms.DefaultOptions)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(name string) *container.Server {
				s, err := container.NewServer(container.Config{
					Name: name, DBNode: "main", DB: db, Net: net, RMI: rt, JMS: provider,
					Web: web.DefaultOptions, Costs: container.DefaultCostModel,
				})
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			main, edge := mk("main"), mk("edge")
			rw, err := container.DeployRWEntity(main, "InvRW", "inventory", "item_id")
			if err != nil {
				t.Fatal(err)
			}
			rw.SetDeltaPush(true)
			// Live replica fed over JMS: its pushes are lost during the
			// partition below, which is exactly the hole the log replay
			// must close.
			live, err := container.DeployROEntity(edge, "InvRO", "InvRW", nil)
			if err != nil {
				t.Fatal(err)
			}
			uf, err := container.DeployUpdaterFacade(edge, "Updater")
			if err != nil {
				t.Fatal(err)
			}
			uf.Register("InvRW", live)
			ap, err := container.NewAsyncPropagator(main, "updates", 256)
			if err != nil {
				t.Fatal(err)
			}
			rw.AddPropagator(ap)
			if _, err := container.DeployUpdateSubscriber(edge, "Sub", "updates", uf); err != nil {
				t.Fatal(err)
			}
			store := replog.NewStore(env.Metrics(), 0)
			rw.PrependPropagator(replog.NewRecorder(store))

			// Partition the WAN mid-run: live pushes published inside the
			// window are dropped (no resilience machinery here).
			sched := &faults.Schedule{Name: "midrun", Events: []faults.Event{
				{Kind: faults.LinkDown, A: "main", B: "edge", At: 2 * time.Second, Duration: 3 * time.Second},
			}}
			if err := faults.Arm(net, sched, seed); err != nil {
				t.Fatal(err)
			}

			// Drive an interleaved update/insert/delete history, maintaining
			// the directly-applied reference state and snapshotting it at
			// every sealed epoch.
			ref := make(map[string]container.State)
			epochRef := make(map[int]map[string]container.State)
			env.Spawn("driver", func(p *sim.Proc) {
				rng := rand.New(rand.NewSource(seed))
				nextID, v := 0, int64(0)
				pick := func() string {
					keys := make([]string, 0, len(ref))
					for k := range ref {
						keys = append(keys, k)
					}
					sort.Strings(keys)
					return keys[rng.Intn(len(keys))]
				}
				for i := 0; i < 60; i++ {
					v++
					switch op := rng.Intn(4); {
					case op == 0 || len(ref) == 0: // insert
						nextID++
						pk := fmt.Sprintf("n%d", nextID)
						st := container.State{"item_id": sqldb.Str(pk), "qty": sqldb.Int(v)}
						if err := rw.Insert(p, st); err != nil {
							t.Errorf("insert %s: %v", pk, err)
							return
						}
						ref[pk] = st.Clone()
					case op == 1 && len(ref) > 1: // delete
						pk := pick()
						if err := rw.Delete(p, sqldb.Str(pk)); err != nil {
							t.Errorf("delete %s: %v", pk, err)
							return
						}
						delete(ref, pk)
					default: // update
						pk := pick()
						if _, err := rw.UpdateFields(p, sqldb.Str(pk), container.State{"qty": sqldb.Int(v)}); err != nil {
							t.Errorf("update %s: %v", pk, err)
							return
						}
						ref[pk]["qty"] = sqldb.Int(v)
					}
					if (i+1)%8 == 0 {
						epochRef[store.SealEpoch()] = cloneRef(ref)
					}
					p.Sleep(time.Duration(rng.Intn(200)) * time.Millisecond)
				}
			})
			env.RunAll()

			// Replay from every sealed epoch (and from before the first
			// commit) onto that epoch's snapshot; each must land exactly on
			// the directly-applied final state.
			epochRef[0] = map[string]container.State{}
			epochs := make([]int, 0, len(epochRef))
			for e := range epochRef {
				epochs = append(epochs, e)
			}
			sort.Ints(epochs)
			l := store.Log("InvRW")
			for _, e := range epochs {
				ro, err := container.DeployROEntity(edge, fmt.Sprintf("Replay%d", e), "InvRW", nil)
				if err != nil {
					t.Fatal(err)
				}
				for pk, st := range epochRef[e] {
					ro.Preload(sqldb.Str(pk), st)
				}
				ups, err := l.CoalescedSince(l.HeadAtEpoch(e))
				if err != nil {
					t.Fatalf("epoch %d: %v", e, err)
				}
				for _, u := range ups {
					ro.ApplyUpdate(u)
				}
				if ro.Cached() != len(ref) {
					t.Fatalf("epoch %d: replayed replica holds %d entities, want %d", e, ro.Cached(), len(ref))
				}
				for pk, want := range ref {
					got, ok := ro.Peek(sqldb.Str(pk))
					if !ok {
						t.Fatalf("epoch %d: pk %s missing after replay", e, pk)
					}
					if !statesEqual(got, want) {
						t.Fatalf("epoch %d: pk %s = %v, want %v", e, pk, got, want)
					}
				}
			}
			env.Close()
		})
	}
}
