package container

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"wadeploy/internal/jms"
	"wadeploy/internal/metrics"
	"wadeploy/internal/rmi"
	"wadeploy/internal/sim"
	"wadeploy/internal/sqldb"
	"wadeploy/internal/trace"
)

// ErrNoSuchEntity is returned when an entity row does not exist.
var ErrNoSuchEntity = errors.New("container: no such entity")

// ErrStaleVersion is returned by optimistic (version-checked) updates when
// the entity changed since the caller read it — the "version number" design
// pattern the paper recommends for use cases spanning multiple transactions
// over possibly-stale presentation data (Section 4.5).
var ErrStaleVersion = errors.New("container: stale version")

// State is an entity bean's field values keyed by column name.
type State map[string]sqldb.Value

// Clone returns a copy of the state.
func (st State) Clone() State {
	out := make(State, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// Merge returns a copy of st with changes applied on top.
func (st State) Merge(changes State) State {
	out := st.Clone()
	for k, v := range changes {
		out[k] = v
	}
	return out
}

// StateFromRow builds a State from a result row.
func StateFromRow(cols []string, row []sqldb.Value) State {
	st := make(State, len(cols))
	for i, c := range cols {
		st[c] = row[i]
	}
	return st
}

// Update describes one committed write to a read-write entity, propagated to
// read-only replicas and query caches.
type Update struct {
	Bean    string      // read-write bean name
	PK      sqldb.Value // primary key of the affected entity
	State   State       // full post-write state (changed fields only when Delta)
	Deleted bool

	// Delta marks State as containing only the fields the write changed
	// (the paper's Section 4.3 optimization: "transferring only the
	// changes instead of the entire bean's state"). Replicas merge deltas
	// into their cached copy; a replica without a copy ignores the delta
	// and lets its next read fetch the full state.
	Delta bool

	// CommittedAt is the virtual time the write committed at the
	// read-write bean; replicas use it to measure propagation delay.
	CommittedAt time.Duration
}

// WireBytes estimates the update's payload size on the wire: deltas cost a
// small header plus a per-field charge, full-state pushes a fixed record.
func (u Update) WireBytes() int {
	if u.Deleted {
		return 96
	}
	if u.Delta {
		return 64 + 96*len(u.State)
	}
	return 1024
}

// Propagator delivers committed updates to replicas. Implementations decide
// whether the writer blocks (SyncPropagator) or not (AsyncPropagator).
type Propagator interface {
	Propagate(p *sim.Proc, updates []Update) error
}

// RWEntity is a read-write entity bean co-located with the data source. Per
// the paper's design rules it exposes only a local interface: it can be
// reached remotely only through a façade on its own server.
type RWEntity struct {
	srv       *Server
	name      string
	table     string
	pkCol     string
	props     []Propagator
	deltaPush bool

	// SQL text for the fixed-shape operations, built once at deploy time so
	// the hot paths hand the database a stable string (which its prepared-
	// statement cache keys on) without per-call concatenation.
	loadSQL    string
	deleteSQL  string
	findPrefix string

	loads  int64
	writes int64

	mLoad  *metrics.Counter
	mStore *metrics.Counter
}

// DeployRWEntity deploys a read-write entity bean backed by table with the
// given primary-key column. It is not bound in JNDI (local interface only).
func DeployRWEntity(srv *Server, name, table, pkCol string) (*RWEntity, error) {
	if _, dup := srv.beans[name]; dup {
		return nil, fmt.Errorf("container: bean %s already deployed on %s", name, srv.name)
	}
	reg := srv.Env().Metrics()
	b := &RWEntity{
		srv: srv, name: name, table: table, pkCol: pkCol,
		loadSQL:    "SELECT * FROM " + table + " WHERE " + pkCol + " = ?",
		deleteSQL:  "DELETE FROM " + table + " WHERE " + pkCol + " = ?",
		findPrefix: "SELECT * FROM " + table,
		mLoad:      reg.Counter("container_ejb_load_total"),
		mStore:     reg.Counter("container_ejb_store_total"),
	}
	srv.beans[name] = &binding{name: name, kind: Entity}
	return b, nil
}

// Name returns the bean's deployment name.
func (b *RWEntity) Name() string { return b.name }

// Loads returns the number of ejbLoad operations performed.
func (b *RWEntity) Loads() int64 { return b.loads }

// Writes returns the number of committed write operations.
func (b *RWEntity) Writes() int64 { return b.writes }

// AddPropagator attaches an update propagator (read-mostly pattern wiring).
func (b *RWEntity) AddPropagator(pr Propagator) { b.props = append(b.props, pr) }

// PrependPropagator attaches a propagator ahead of the existing chain, so it
// observes every commit before any blocking push runs. A migration's drain
// buffer must attach this way: propagation to already-wired edges sleeps on
// WAN pushes, and a buffer attached behind it would see a commit only after
// that sleep — by which time the cut-over may already have drained and
// detached it, losing the update for the newly wired edge.
func (b *RWEntity) PrependPropagator(pr Propagator) {
	b.props = append([]Propagator{pr}, b.props...)
}

// RemovePropagator detaches a previously attached propagator (the migration
// cut-over detaches its drain buffer here). Removing a propagator that is
// not attached is a no-op.
func (b *RWEntity) RemovePropagator(pr Propagator) {
	for i, cur := range b.props {
		if cur == pr {
			b.props = append(b.props[:i], b.props[i+1:]...)
			return
		}
	}
}

// Snapshot reads the bean's entire backing table in one bulk SELECT and
// returns a full-state Update per entity in table order — the base image of
// a live migration's state transfer. It pays the real SQL and ejbLoad CPU
// cost on the bean's server; the caller pays the wire cost of shipping the
// image (sum of WireBytes) separately.
func (b *RWEntity) Snapshot(p *sim.Proc) ([]Update, error) {
	b.srv.Compute(p, b.srv.costs.EntityLoadCPU)
	res, err := b.srv.SQL(p, b.findPrefix)
	if err != nil {
		return nil, fmt.Errorf("entity %s snapshot: %w", b.name, err)
	}
	now := p.Now()
	out := make([]Update, 0, res.Len())
	for _, row := range res.Rows {
		st := StateFromRow(res.Cols, row)
		out = append(out, Update{Bean: b.name, PK: st[b.pkCol], State: st, CommittedAt: now})
	}
	return out, nil
}

// SetDeltaPush makes UpdateFields propagate only the changed fields instead
// of the full post-write state (Section 4.3's bandwidth optimization;
// requires push-refresh replicas, which merge deltas into their copies).
func (b *RWEntity) SetDeltaPush(on bool) { b.deltaPush = on }

// Propagators returns the number of attached propagators.
func (b *RWEntity) Propagators() int { return len(b.props) }

// Load reads the entity's state by primary key (ejbFindByPrimaryKey +
// ejbLoad; the paper's baseline removes the redundant extra database call,
// so this is a single SELECT).
func (b *RWEntity) Load(p *sim.Proc, pk sqldb.Value) (State, error) {
	b.loads++
	b.mLoad.Inc()
	b.srv.Compute(p, b.srv.costs.EntityLoadCPU)
	res, err := b.srv.SQL(p, b.loadSQL, pk)
	if err != nil {
		return nil, fmt.Errorf("entity %s load: %w", b.name, err)
	}
	if res.Len() == 0 {
		return nil, fmt.Errorf("entity %s pk %v: %w", b.name, pk, ErrNoSuchEntity)
	}
	return StateFromRow(res.Cols, res.Rows[0]), nil
}

// FindWhere runs a finder query (SELECT * FROM table WHERE <cond>) and
// returns the matching entities' states.
func (b *RWEntity) FindWhere(p *sim.Proc, cond string, args ...sqldb.Value) ([]State, error) {
	b.srv.Compute(p, b.srv.costs.EntityLoadCPU)
	q := b.findPrefix
	if strings.TrimSpace(cond) != "" {
		q += " WHERE " + cond
	}
	res, err := b.srv.SQL(p, q, args...)
	if err != nil {
		return nil, fmt.Errorf("entity %s find: %w", b.name, err)
	}
	out := make([]State, 0, res.Len())
	for _, row := range res.Rows {
		out = append(out, StateFromRow(res.Cols, row))
	}
	return out, nil
}

// Insert creates a new entity (ejbCreate) and propagates it.
func (b *RWEntity) Insert(p *sim.Proc, st State) error {
	b.srv.Compute(p, b.srv.costs.EntityStoreCPU)
	cols := make([]string, 0, len(st))
	args := make([]sqldb.Value, 0, len(st))
	for c := range st {
		cols = append(cols, c)
	}
	// Deterministic column order.
	sortStrings(cols)
	marks := make([]string, len(cols))
	for i, c := range cols {
		args = append(args, st[c])
		marks[i] = "?"
	}
	q := "INSERT INTO " + b.table + " (" + strings.Join(cols, ", ") + ") VALUES (" + strings.Join(marks, ", ") + ")"
	if _, err := b.srv.SQL(p, q, args...); err != nil {
		return fmt.Errorf("entity %s insert: %w", b.name, err)
	}
	b.writes++
	b.mStore.Inc()
	return b.propagate(p, Update{Bean: b.name, PK: st[b.pkCol], State: st.Clone()})
}

// UpdateFields applies changes to the entity (ejbStore at commit) and
// propagates the merged post-write state.
func (b *RWEntity) UpdateFields(p *sim.Proc, pk sqldb.Value, changes State) (State, error) {
	cur, err := b.Load(p, pk)
	if err != nil {
		return nil, err
	}
	b.srv.Compute(p, b.srv.costs.EntityStoreCPU)
	cols := make([]string, 0, len(changes))
	for c := range changes {
		cols = append(cols, c)
	}
	sortStrings(cols)
	sets := make([]string, len(cols))
	args := make([]sqldb.Value, 0, len(cols)+1)
	for i, c := range cols {
		sets[i] = c + " = ?"
		args = append(args, changes[c])
	}
	args = append(args, pk)
	q := "UPDATE " + b.table + " SET " + strings.Join(sets, ", ") + " WHERE " + b.pkCol + " = ?"
	if _, err := b.srv.SQL(p, q, args...); err != nil {
		return nil, fmt.Errorf("entity %s update: %w", b.name, err)
	}
	b.writes++
	b.mStore.Inc()
	merged := cur.Merge(changes)
	u := Update{Bean: b.name, PK: pk, State: merged}
	if b.deltaPush {
		u = Update{Bean: b.name, PK: pk, State: changes.Clone(), Delta: true}
	}
	if err := b.propagate(p, u); err != nil {
		return nil, err
	}
	return merged, nil
}

// Delete removes the entity (ejbRemove) and propagates the deletion.
func (b *RWEntity) Delete(p *sim.Proc, pk sqldb.Value) error {
	b.srv.Compute(p, b.srv.costs.EntityStoreCPU)
	res, err := b.srv.SQL(p, b.deleteSQL, pk)
	if err != nil {
		return fmt.Errorf("entity %s delete: %w", b.name, err)
	}
	if res.Affected == 0 {
		return fmt.Errorf("entity %s pk %v: %w", b.name, pk, ErrNoSuchEntity)
	}
	b.writes++
	b.mStore.Inc()
	return b.propagate(p, Update{Bean: b.name, PK: pk, Deleted: true})
}

// UpdateIfVersion is the optimistic variant of UpdateFields: it applies
// changes only if the entity's versionCol still equals expected, bumping the
// version by one. A mismatch returns ErrStaleVersion and leaves the entity
// untouched. This protects use cases that read (possibly stale) replica data
// in one transaction and write in a later one.
func (b *RWEntity) UpdateIfVersion(p *sim.Proc, pk sqldb.Value, versionCol string, expected int64, changes State) (State, error) {
	cur, err := b.Load(p, pk)
	if err != nil {
		return nil, err
	}
	if got := cur[versionCol].AsInt(); got != expected {
		return nil, fmt.Errorf("entity %s pk %v: have version %d, caller expected %d: %w",
			b.name, pk, got, expected, ErrStaleVersion)
	}
	bumped := changes.Clone()
	bumped[versionCol] = sqldb.Int(expected + 1)
	return b.UpdateFields(p, pk, bumped)
}

func (b *RWEntity) propagate(p *sim.Proc, u Update) error {
	u.CommittedAt = p.Now()
	for _, pr := range b.props {
		if err := pr.Propagate(p, []Update{u}); err != nil {
			return fmt.Errorf("entity %s propagate: %w", b.name, err)
		}
	}
	return nil
}

// sortStrings is a tiny insertion sort to avoid importing sort for hot maps.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// FetchFunc retrieves an entity's fresh state for a read-only replica on a
// cold miss or pull refresh — typically one RMI call to a façade co-located
// with the read-write bean.
type FetchFunc func(p *sim.Proc, pk sqldb.Value) (State, error)

// ROEntity is a read-only replica of an entity bean deployed on an edge
// server (the read-mostly pattern, Section 4.3). Reads are served from local
// memory; freshness is maintained by push updates or pull refresh after
// invalidation.
type ROEntity struct {
	srv   *Server
	name  string
	rw    string // name of the backing read-write bean
	fetch FetchFunc
	ttl   time.Duration // 0 = no timeout invalidation

	entries map[string]roEntry

	// staleMaxAge, when positive, lets a failed refresh serve the cached
	// copy while it is younger than the bound (graceful degradation when
	// the central server is unreachable).
	staleMaxAge time.Duration
	staleServes int64

	// owns, when set, restricts the replica to its partition slice: only
	// owned keys are cached and refreshed locally; unowned keys pass
	// through the fetch path every time without ever entering the cache.
	owns       func(sqldb.Value) bool
	remoteGets int64

	hits, misses, staleRefreshes, pushes int64

	// Propagation-delay accounting (commit at the read-write bean to
	// application at this replica) for consistency reporting.
	delaySamples int64
	delaySum     time.Duration
	delayMax     time.Duration

	mHits      *metrics.Counter
	mMisses    *metrics.Counter
	mStaleRef  *metrics.Counter
	mPushes    *metrics.Counter
	mStaleness *metrics.Histogram
	// Registered lazily by SetServeStale so degradation-free runs export
	// byte-identical metric snapshots.
	mStale    *metrics.Counter
	mStaleAge *metrics.Histogram
	// Registered lazily by SetOwnership for the same reason.
	mRemoteGets *metrics.Counter
}

type roEntry struct {
	state    State
	stale    bool
	loadedAt time.Duration
}

// DeployROEntity deploys a read-only replica of rwBean. fetch is used on
// cold misses and pull refreshes; it may be nil for strictly push-fed
// replicas that tolerate ErrNoSuchEntity on cold reads.
func DeployROEntity(srv *Server, name, rwBean string, fetch FetchFunc) (*ROEntity, error) {
	if _, dup := srv.beans[name]; dup {
		return nil, fmt.Errorf("container: bean %s already deployed on %s", name, srv.name)
	}
	reg := srv.Env().Metrics()
	b := &ROEntity{
		srv:        srv,
		name:       name,
		rw:         rwBean,
		fetch:      fetch,
		entries:    make(map[string]roEntry),
		mHits:      reg.Counter("container_replica_hits_total"),
		mMisses:    reg.Counter("container_replica_misses_total"),
		mStaleRef:  reg.Counter("container_replica_stale_refreshes_total"),
		mPushes:    reg.Counter("container_replica_pushes_total"),
		mStaleness: reg.Histogram("container_replica_staleness_ns"),
	}
	srv.beans[name] = &binding{name: name, kind: Entity}
	return b, nil
}

// Name returns the bean's deployment name.
func (b *ROEntity) Name() string { return b.name }

// Backing returns the read-write bean this replica mirrors.
func (b *ROEntity) Backing() string { return b.rw }

// Hits, Misses, Pushes report cache behavior for tests and reports.
func (b *ROEntity) Hits() int64   { return b.hits }
func (b *ROEntity) Misses() int64 { return b.misses }
func (b *ROEntity) Pushes() int64 { return b.pushes }

// SetTTL enables timeout invalidation: entries older than ttl refresh via
// the fetch path on their next read (the vendor-standard read-only bean
// mode the paper describes, and the fallback that bounds staleness when an
// asynchronous push is lost). ttl <= 0 disables the timeout.
func (b *ROEntity) SetTTL(ttl time.Duration) { b.ttl = ttl }

// TTL returns the timeout-invalidation interval (0 when disabled).
func (b *ROEntity) TTL() time.Duration { return b.ttl }

// SetServeStale enables graceful degradation: when a refresh fails (the
// central server is unreachable) and a local copy younger than maxAge
// exists, Get serves the stale copy instead of erroring.
func (b *ROEntity) SetServeStale(maxAge time.Duration) {
	b.staleMaxAge = maxAge
	if maxAge > 0 && b.mStale == nil {
		reg := b.srv.Env().Metrics()
		b.mStale = reg.Counter("container_stale_serves_total")
		b.mStaleAge = reg.Histogram("container_stale_serve_age_ns")
	}
}

// StaleServes returns the number of reads served from stale entries.
func (b *ROEntity) StaleServes() int64 { return b.staleServes }

// SetOwnership restricts the replica to a partition slice: reads for keys
// outside owns go straight to the fetch path (a remote get) and are never
// cached, preloads and pushed updates for unowned keys are dropped. nil
// restores full replication.
func (b *ROEntity) SetOwnership(owns func(sqldb.Value) bool) {
	b.owns = owns
	if owns != nil && b.mRemoteGets == nil {
		b.mRemoteGets = b.srv.Env().Metrics().Counter("container_replica_remote_gets_total")
	}
}

// Owns reports whether this replica's partition slice covers pk (always true
// without partitioning).
func (b *ROEntity) Owns(pk sqldb.Value) bool { return b.owns == nil || b.owns(pk) }

// RemoteGets returns the number of reads for unowned keys that went to the
// fetch path.
func (b *ROEntity) RemoteGets() int64 { return b.remoteGets }

// MaxPropagationDelay returns the largest observed commit-to-apply delay.
func (b *ROEntity) MaxPropagationDelay() time.Duration { return b.delayMax }

// MeanPropagationDelay returns the mean commit-to-apply delay.
func (b *ROEntity) MeanPropagationDelay() time.Duration {
	if b.delaySamples == 0 {
		return 0
	}
	return b.delaySum / time.Duration(b.delaySamples)
}

// Cached returns the number of locally cached entities.
func (b *ROEntity) Cached() int { return len(b.entries) }

// Peek returns the locally cached state for pk without touching the fetch
// path, hit/miss accounting, or CPU costs — a white-box view for tests and
// diagnostics that must observe cache contents without mutating them.
func (b *ROEntity) Peek(pk sqldb.Value) (State, bool) {
	e, ok := b.entries[pkKey(pk)]
	if !ok {
		return nil, false
	}
	return e.state, true
}

func pkKey(pk sqldb.Value) string { return pk.String() }

// expired reports whether an entry has outlived the timeout invalidation.
func (b *ROEntity) expired(e roEntry) bool {
	return b.ttl > 0 && b.srv.Env().Now()-e.loadedAt > b.ttl
}

// Get serves the entity's state: locally when fresh, via fetch on a miss,
// after a pull invalidation, or after timeout expiry.
func (b *ROEntity) Get(p *sim.Proc, pk sqldb.Value) (State, error) {
	if !b.Owns(pk) {
		// Outside this replica's partition slice: always a remote get,
		// never cached locally (the slice is the whole point — an edge
		// holds only its partitions).
		if b.fetch == nil {
			return nil, fmt.Errorf("read-only %s pk %v (unowned, no fetch path): %w", b.name, pk, ErrNoSuchEntity)
		}
		b.remoteGets++
		b.mRemoteGets.Inc()
		st, err := b.fetch(p, pk)
		if err != nil {
			return nil, fmt.Errorf("read-only %s remote get: %w", b.name, err)
		}
		return st, nil
	}
	k := pkKey(pk)
	e, ok := b.entries[k]
	if ok && !e.stale && !b.expired(e) {
		b.hits++
		b.mHits.Inc()
		b.srv.Compute(p, b.srv.costs.CacheHitCPU)
		return e.state.Clone(), nil
	}
	if b.fetch == nil {
		return nil, fmt.Errorf("read-only %s pk %v (no fetch path): %w", b.name, pk, ErrNoSuchEntity)
	}
	if ok {
		b.staleRefreshes++
		b.mStaleRef.Inc()
	} else {
		b.misses++
		b.mMisses.Inc()
	}
	st, err := b.fetch(p, pk)
	if err != nil {
		// Serve-stale degradation: a refresh that cannot reach the
		// central server falls back to the local copy while it is
		// younger than the staleness bound.
		if ok && b.staleMaxAge > 0 {
			if age := p.Now() - e.loadedAt; age <= b.staleMaxAge {
				b.staleServes++
				b.mStale.Inc()
				b.mStaleAge.Observe(age)
				return e.state.Clone(), nil
			}
		}
		return nil, fmt.Errorf("read-only %s refresh: %w", b.name, err)
	}
	b.entries[k] = roEntry{state: st.Clone(), loadedAt: p.Now()}
	return st, nil
}

// Preload installs state without cost accounting (warm-up/seeding). Keys
// outside the replica's partition slice are dropped.
func (b *ROEntity) Preload(pk sqldb.Value, st State) {
	if !b.Owns(pk) {
		return
	}
	b.entries[pkKey(pk)] = roEntry{state: st.Clone(), loadedAt: b.srv.Env().Now()}
}

// ApplyUpdate applies a pushed update (push-based refresh: replicas always
// serve local reads).
func (b *ROEntity) ApplyUpdate(u Update) {
	if !b.Owns(u.PK) {
		// A push for an unowned key (source-side filtering off, or a
		// broadcast topic): drop it before any accounting.
		return
	}
	b.pushes++
	b.mPushes.Inc()
	now := b.srv.Env().Now()
	if u.CommittedAt > 0 {
		delay := now - u.CommittedAt
		b.delaySamples++
		b.delaySum += delay
		if delay > b.delayMax {
			b.delayMax = delay
		}
		b.mStaleness.Observe(delay)
	}
	k := pkKey(u.PK)
	if u.Deleted {
		delete(b.entries, k)
		return
	}
	if u.Delta {
		e, ok := b.entries[k]
		if !ok {
			// No local copy to patch: leave it to the next read's fetch.
			return
		}
		b.entries[k] = roEntry{state: e.state.Merge(u.State), loadedAt: now}
		return
	}
	b.entries[k] = roEntry{state: u.State.Clone(), loadedAt: now}
}

// Reset drops every cached entry. A resync migration clears the replica
// before installing a fresh snapshot, so rows deleted while the replica was
// cut off do not linger past the resync.
func (b *ROEntity) Reset() {
	for k := range b.entries {
		delete(b.entries, k)
	}
}

// Invalidate marks one entity stale (pull-based refresh).
func (b *ROEntity) Invalidate(pk sqldb.Value) {
	k := pkKey(pk)
	if e, ok := b.entries[k]; ok {
		e.stale = true
		b.entries[k] = e
	}
}

// InvalidateAll marks the whole replica stale (timeout-style invalidation).
func (b *ROEntity) InvalidateAll() {
	for k, e := range b.entries {
		e.stale = true
		b.entries[k] = e
	}
}

// Applier consumes pushed updates; both ROEntity and query-cache adapters
// implement it, letting one updater façade feed all edge caches.
type Applier interface {
	ApplyUpdate(u Update)
}

// UpdaterFacade is the edge-side façade that receives pushed updates in one
// bulk RMI call (or from an MDB) and applies them to the registered
// read-only beans and query caches.
type UpdaterFacade struct {
	srv      *Server
	name     string
	appliers map[string][]Applier
	applied  int64

	mApplied *metrics.Counter
}

// MethodApply is the RMI method name for pushing updates to an
// UpdaterFacade; the argument is a []Update batch.
const MethodApply = "apply"

// DeployUpdaterFacade deploys and JNDI-binds an updater façade.
func DeployUpdaterFacade(srv *Server, name string) (*UpdaterFacade, error) {
	u := &UpdaterFacade{
		srv: srv, name: name, appliers: make(map[string][]Applier),
		mApplied: srv.Env().Metrics().Counter("container_updates_applied_total"),
	}
	if err := srv.bind(name, StatelessSession, u.handle); err != nil {
		return nil, err
	}
	return u, nil
}

// Register routes updates for rwBean to a.
func (u *UpdaterFacade) Register(rwBean string, a Applier) {
	u.appliers[rwBean] = append(u.appliers[rwBean], a)
}

// Applied returns the number of updates applied.
func (u *UpdaterFacade) Applied() int64 { return u.applied }

// Apply applies a batch locally (used by MDB delivery on the same server).
func (u *UpdaterFacade) Apply(p *sim.Proc, updates []Update) {
	u.srv.Compute(p, u.srv.costs.CacheHitCPU)
	for _, up := range updates {
		u.applied++
		u.mApplied.Inc()
		for _, a := range u.appliers[up.Bean] {
			a.ApplyUpdate(up)
		}
	}
}

// ApplyLocal applies a batch with no CPU accounting — the zero-virtual-time
// replay a migration cut-over performs inside a single simulation event.
// Charging compute here would let concurrent requests interleave with the
// replay and observe a half-replayed replica; the migration instead books
// the replay's cost against its own transfer accounting.
func (u *UpdaterFacade) ApplyLocal(updates []Update) {
	for _, up := range updates {
		u.applied++
		u.mApplied.Inc()
		for _, a := range u.appliers[up.Bean] {
			a.ApplyUpdate(up)
		}
	}
}

func (u *UpdaterFacade) handle(p *sim.Proc, call *rmi.Call) (any, error) {
	if call.Method != MethodApply {
		return nil, fmt.Errorf("container: %s.%s: %w", u.name, call.Method, ErrNoSuchMethod)
	}
	updates, ok := call.Arg(0).([]Update)
	if !ok {
		return nil, fmt.Errorf("container: %s.apply: argument must be []Update", u.name)
	}
	u.srv.Compute(p, u.srv.costs.MethodCPU)
	u.Apply(p, updates)
	return len(updates), nil
}

// UpdateBuffer is a Propagator that records committed updates instead of
// delivering them anywhere — the drain buffer of a live migration. One
// buffer attached to every bean of a migrating bundle captures all their
// writes in global commit order (propagate runs on the writer's process, so
// append order is commit order). It is a pure accumulator: no cost, no
// network, no RNG, which keeps buffering invisible to the rest of the run.
type UpdateBuffer struct {
	updates []Update
}

// NewUpdateBuffer returns an empty drain buffer.
func NewUpdateBuffer() *UpdateBuffer { return &UpdateBuffer{} }

// Propagate records the batch.
func (ub *UpdateBuffer) Propagate(_ *sim.Proc, updates []Update) error {
	ub.updates = append(ub.updates, updates...)
	return nil
}

// Len returns the number of buffered updates.
func (ub *UpdateBuffer) Len() int { return len(ub.updates) }

// WireBytes sums the payload estimate of the buffered updates — what a
// catch-up round of the migration must ship.
func (ub *UpdateBuffer) WireBytes() int {
	total := 0
	for _, u := range ub.updates {
		total += u.WireBytes()
	}
	return total
}

// Drain returns the buffered updates in commit order and clears the buffer.
func (ub *UpdateBuffer) Drain() []Update {
	out := ub.updates
	ub.updates = nil
	return out
}

// SyncPropagator pushes updates synchronously over RMI to updater façades on
// other servers: the writer blocks until every replica has applied the
// update (zero staleness, Section 4.3). Pushes happen sequentially, which is
// why write response time grows with the number of replicas.
type SyncPropagator struct {
	srv     *Server
	targets []SyncTarget
	bytes   int

	// filters holds optional per-target update filters (partitioned
	// replicas: each edge only receives updates for keys it owns). Kept in
	// a side map so SyncTarget stays comparable. A target without an entry
	// receives everything — that path is byte-identical to the unfiltered
	// propagator.
	filters map[SyncTarget]func(Update) bool

	// BestEffort makes unreachable replicas non-fatal: the push is skipped
	// (and counted) instead of failing the writer's transaction. The
	// default is strict, preserving the paper's zero-staleness guarantee;
	// best-effort trades consistency for write availability during WAN
	// partitions.
	BestEffort bool

	// Parallel fans the blocking pushes out concurrently instead of
	// sequentially: the writer still blocks for zero staleness, but for
	// roughly one push latency instead of the sum. The paper's measured
	// commit times sit between the two extremes (suggesting partial
	// overlap in JBoss); this knob lets the ablation quantify both ends.
	Parallel bool

	skipped int64

	mPushes  *metrics.Counter
	mSkipped *metrics.Counter
	mPushNs  *metrics.Histogram
}

// SyncTarget names an updater façade deployment.
type SyncTarget struct {
	Server string // node ID
	Facade string // updater façade bean name
}

// NewSyncPropagator creates a blocking push propagator from srv to targets.
func NewSyncPropagator(srv *Server, targets []SyncTarget, msgBytes int) *SyncPropagator {
	if msgBytes <= 0 {
		msgBytes = 1024
	}
	reg := srv.Env().Metrics()
	return &SyncPropagator{
		srv: srv, targets: targets, bytes: msgBytes,
		mPushes:  reg.Counter("container_sync_pushes_total"),
		mSkipped: reg.Counter("container_sync_push_skipped_total"),
		mPushNs:  reg.Histogram("container_sync_push_ns"),
	}
}

// Skipped returns the number of pushes dropped in best-effort mode.
func (sp *SyncPropagator) Skipped() int64 { return sp.skipped }

// AddTarget attaches another replica destination at runtime (dynamic
// demand-driven redeployment). Adding an existing target is a no-op.
func (sp *SyncPropagator) AddTarget(t SyncTarget) {
	for _, cur := range sp.targets {
		if cur == t {
			return
		}
	}
	sp.targets = append(sp.targets, t)
}

// RemoveTarget detaches a replica destination at runtime (retirement of a
// remote replica bundle, or suspension of pushes to an unreachable edge).
// Removing an absent target is a no-op. The target's filter, if any, stays
// registered so a later re-add (resume after suspension) keeps its scope.
func (sp *SyncPropagator) RemoveTarget(t SyncTarget) {
	for i, cur := range sp.targets {
		if cur == t {
			sp.targets = append(sp.targets[:i], sp.targets[i+1:]...)
			return
		}
	}
}

// SetTargetFilter scopes pushes to t: only updates passing keep are sent
// (partitioned replicas receive just their slice of the key space). A nil
// keep removes the filter, restoring full propagation to t.
func (sp *SyncPropagator) SetTargetFilter(t SyncTarget, keep func(Update) bool) {
	if keep == nil {
		delete(sp.filters, t)
		return
	}
	if sp.filters == nil {
		sp.filters = make(map[SyncTarget]func(Update) bool)
	}
	sp.filters[t] = keep
}

// updatesFor applies t's filter to the batch. The nil-filter path returns
// the batch unsliced, keeping unpartitioned propagation byte-identical.
func (sp *SyncPropagator) updatesFor(t SyncTarget, updates []Update) []Update {
	keep, ok := sp.filters[t]
	if !ok {
		return updates
	}
	out := make([]Update, 0, len(updates))
	for _, u := range updates {
		if keep(u) {
			out = append(out, u)
		}
	}
	return out
}

// Targets returns the number of replica destinations.
func (sp *SyncPropagator) Targets() int { return len(sp.targets) }

// batchBytes sizes a push: delta updates ride their WireBytes estimate,
// full-state batches the configured record size.
func (sp *SyncPropagator) batchBytes(updates []Update) int {
	total := 0
	for _, u := range updates {
		if u.Delta || u.Deleted {
			total += u.WireBytes()
		} else {
			total += sp.bytes
		}
	}
	if total <= 0 {
		total = sp.bytes
	}
	return total
}

// Propagate blocks while each target applies the batch.
func (sp *SyncPropagator) Propagate(p *sim.Proc, updates []Update) error {
	// Sequential pushes nest their rmi spans right here, so the fan-out
	// span's self-time is ~0 and each call claims its own cause. Parallel
	// pushes run on spawned processes (async spans), leaving the wait for
	// the slowest target as this span's self-time — wide-area wait whenever
	// any target is across a WAN link.
	pushCause := trace.CauseService
	if sp.Parallel && len(sp.targets) > 1 && trace.Active(p) {
		for _, t := range sp.targets {
			if t.Server != sp.srv.name && sp.srv.net.WideArea(sp.srv.name, t.Server) {
				pushCause = trace.CauseWAN
				break
			}
		}
	}
	defer trace.Op(p, "push", "sync fan-out", sp.srv.name, "", pushCause)()
	start := p.Now()
	defer func() { sp.mPushNs.Observe(p.Now() - start) }()
	payload := sp.batchBytes(updates)
	if sp.Parallel && len(sp.targets) > 1 {
		return sp.propagateParallel(p, payload, updates)
	}
	for _, t := range sp.targets {
		batch, pl := updates, payload
		if len(sp.filters) > 0 {
			if batch = sp.updatesFor(t, updates); len(batch) == 0 {
				// Nothing in this target's partition slice: no push at all.
				continue
			}
			if len(batch) < len(updates) {
				pl = sp.batchBytes(batch)
			}
		}
		if err := sp.pushOne(p, t, pl, batch); err != nil {
			if sp.BestEffort {
				sp.skipped++
				sp.mSkipped.Inc()
				continue
			}
			return err
		}
	}
	return nil
}

// pushOne performs the blocking push to a single target.
func (sp *SyncPropagator) pushOne(p *sim.Proc, t SyncTarget, payload int, updates []Update) error {
	stub, err := sp.srv.StubFor(p, t.Server, t.Facade)
	if err == nil {
		_, err = stub.InvokeSized(p, MethodApply, payload, 64, updates)
	}
	if err != nil {
		return fmt.Errorf("sync push to %s/%s: %w", t.Server, t.Facade, err)
	}
	sp.mPushes.Inc()
	return nil
}

// propagateParallel fans pushes out concurrently and blocks for all of them.
func (sp *SyncPropagator) propagateParallel(p *sim.Proc, payload int, updates []Update) error {
	env := sp.srv.Env()
	promises := make([]*sim.Promise[struct{}], 0, len(sp.targets))
	for _, t := range sp.targets {
		t := t
		batch, pl := updates, payload
		if len(sp.filters) > 0 {
			if batch = sp.updatesFor(t, updates); len(batch) == 0 {
				continue
			}
			if len(batch) < len(updates) {
				pl = sp.batchBytes(batch)
			}
		}
		pr := sim.NewPromise[struct{}](env)
		promises = append(promises, pr)
		ctx := trace.Capture(p)
		env.Spawn("sync-push:"+t.Server, func(pp *sim.Proc) {
			defer trace.Adopt(pp, ctx, "push", "apply batch", t.Server, trace.CauseService)()
			if err := sp.pushOne(pp, t, pl, batch); err != nil {
				pr.Fail(err)
				return
			}
			pr.Resolve(struct{}{})
		})
	}
	var firstErr error
	for _, pr := range promises {
		if _, err := sim.Await(p, pr); err != nil {
			if sp.BestEffort {
				sp.skipped++
				sp.mSkipped.Inc()
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// AsyncPropagator publishes updates to a JMS topic; MDB subscribers on the
// edge servers apply them (Section 4.5). The writer pays only the local
// publish cost.
type AsyncPropagator struct {
	srv   *Server
	topic string
	bytes int

	mPublishes *metrics.Counter
}

// NewAsyncPropagator creates a non-blocking propagator publishing on topic.
func NewAsyncPropagator(srv *Server, topic string, msgBytes int) (*AsyncPropagator, error) {
	if srv.jms == nil {
		return nil, fmt.Errorf("container: async propagator on %s: no JMS provider", srv.name)
	}
	if msgBytes <= 0 {
		msgBytes = 1024
	}
	srv.jms.CreateTopic(topic)
	return &AsyncPropagator{
		srv: srv, topic: topic, bytes: msgBytes,
		mPublishes: srv.Env().Metrics().Counter("container_async_publishes_total"),
	}, nil
}

// Topic returns the JMS topic name.
func (ap *AsyncPropagator) Topic() string { return ap.topic }

// Propagate publishes the batch and returns without waiting for delivery.
func (ap *AsyncPropagator) Propagate(p *sim.Proc, updates []Update) error {
	defer trace.Opf(p, "jms", ap.srv.name, "", trace.CauseService, "publish ", ap.topic, "")()
	if err := ap.srv.jms.Publish(p, ap.srv.name, ap.topic, updates, ap.bytes); err != nil {
		return fmt.Errorf("async push: %w", err)
	}
	ap.mPublishes.Inc()
	return nil
}

// DeployUpdateSubscriber deploys an MDB on srv that feeds a local updater
// façade from the topic (the UpdateSubscriber MDB of Fig. 6).
func DeployUpdateSubscriber(srv *Server, name, topic string, facade *UpdaterFacade) (*MDBean, error) {
	return DeployMDB(srv, name, topic, func(p *sim.Proc, s *Server, msg *jms.Message) {
		updates, ok := msg.Body.([]Update)
		if !ok {
			return
		}
		facade.Apply(p, updates)
	})
}
