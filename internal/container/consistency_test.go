package container

import (
	"errors"
	"testing"
	"time"

	"wadeploy/internal/rmi"
	"wadeploy/internal/sim"
	"wadeploy/internal/simnet"
	"wadeploy/internal/sqldb"
	"wadeploy/internal/web"
)

func TestROEntityTTLInvalidation(t *testing.T) {
	f := newFixture(t)
	rw, err := DeployRWEntity(f.main, "InventoryRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	fetches := 0
	ro, err := DeployROEntity(f.edge, "InventoryRO", "InventoryRW", func(p *sim.Proc, pk sqldb.Value) (State, error) {
		fetches++
		return rw.Load(p, pk)
	})
	if err != nil {
		t.Fatal(err)
	}
	ro.SetTTL(10 * time.Second)
	if ro.TTL() != 10*time.Second {
		t.Fatalf("ttl = %v", ro.TTL())
	}
	f.run(t, func(p *sim.Proc) {
		if _, err := ro.Get(p, sqldb.Str("i1")); err != nil { // cold miss
			t.Fatalf("get: %v", err)
		}
		p.Sleep(5 * time.Second)
		if _, err := ro.Get(p, sqldb.Str("i1")); err != nil { // still fresh
			t.Fatalf("get: %v", err)
		}
		if fetches != 1 {
			t.Fatalf("fetches = %d before expiry, want 1", fetches)
		}
		p.Sleep(6 * time.Second) // now 11s since load
		if _, err := ro.Get(p, sqldb.Str("i1")); err != nil {
			t.Fatalf("get: %v", err)
		}
		if fetches != 2 {
			t.Fatalf("fetches = %d after expiry, want 2", fetches)
		}
	})
}

func TestROEntityTTLResetByPush(t *testing.T) {
	f := newFixture(t)
	fetches := 0
	ro, err := DeployROEntity(f.edge, "RO", "RW", func(p *sim.Proc, pk sqldb.Value) (State, error) {
		fetches++
		return State{"v": sqldb.Int(1)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ro.SetTTL(10 * time.Second)
	f.run(t, func(p *sim.Proc) {
		if _, err := ro.Get(p, sqldb.Str("a")); err != nil {
			t.Fatalf("get: %v", err)
		}
		p.Sleep(8 * time.Second)
		// A push renews the entry's clock.
		ro.ApplyUpdate(Update{Bean: "RW", PK: sqldb.Str("a"), State: State{"v": sqldb.Int(2)}})
		p.Sleep(8 * time.Second) // 16s since load, 8s since push
		st, err := ro.Get(p, sqldb.Str("a"))
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if st["v"].AsInt() != 2 || fetches != 1 {
			t.Fatalf("v=%v fetches=%d; push should have renewed TTL", st["v"], fetches)
		}
	})
}

func TestROEntityPropagationDelayMetrics(t *testing.T) {
	f := newFixture(t)
	rw, err := DeployRWEntity(f.main, "InventoryRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	ro, err := DeployROEntity(f.edge, "InventoryRO", "InventoryRW", nil)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := DeployUpdaterFacade(f.edge, "Updater")
	if err != nil {
		t.Fatal(err)
	}
	uf.Register("InventoryRW", ro)
	ap, err := NewAsyncPropagator(f.main, "updates", 512)
	if err != nil {
		t.Fatal(err)
	}
	rw.AddPropagator(ap)
	if _, err := DeployUpdateSubscriber(f.edge, "Sub", "updates", uf); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(1)}); err != nil {
			t.Fatalf("update: %v", err)
		}
	})
	// Async delivery crosses the 100ms one-way WAN.
	if d := ro.MaxPropagationDelay(); d < 100*time.Millisecond || d > time.Second {
		t.Fatalf("max propagation delay = %v, want ~one-way WAN", d)
	}
	if ro.MeanPropagationDelay() == 0 {
		t.Fatal("mean propagation delay not recorded")
	}
}

func TestUpdateIfVersionOptimisticConcurrency(t *testing.T) {
	f := newFixture(t)
	if _, err := f.db.Exec(`CREATE TABLE doc (id INT PRIMARY KEY, body TEXT, version INT NOT NULL)`); err != nil {
		t.Fatal(err)
	}
	if _, err := f.db.Exec(`INSERT INTO doc VALUES (1, 'v1', 1)`); err != nil {
		t.Fatal(err)
	}
	rw, err := DeployRWEntity(f.main, "Doc", "doc", "id")
	if err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		// Writer A read version 1 and updates successfully.
		st, err := rw.UpdateIfVersion(p, sqldb.Int(1), "version", 1, State{"body": sqldb.Str("from A")})
		if err != nil {
			t.Fatalf("A: %v", err)
		}
		if st["version"].AsInt() != 2 {
			t.Fatalf("version after A = %v", st["version"])
		}
		// Writer B also read version 1 (stale): must be rejected.
		_, err = rw.UpdateIfVersion(p, sqldb.Int(1), "version", 1, State{"body": sqldb.Str("from B")})
		if !errors.Is(err, ErrStaleVersion) {
			t.Fatalf("B: err = %v, want ErrStaleVersion", err)
		}
		cur, err := rw.Load(p, sqldb.Int(1))
		if err != nil {
			t.Fatal(err)
		}
		if cur["body"].AsString() != "from A" || cur["version"].AsInt() != 2 {
			t.Fatalf("state = %v, stale write leaked", cur)
		}
		// B retries with the fresh version.
		if _, err := rw.UpdateIfVersion(p, sqldb.Int(1), "version", 2, State{"body": sqldb.Str("from B")}); err != nil {
			t.Fatalf("B retry: %v", err)
		}
	})
}

func TestSyncPropagatorBestEffortSkipsPartitionedEdge(t *testing.T) {
	f := newFixture(t)
	rw, err := DeployRWEntity(f.main, "InventoryRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	ro, err := DeployROEntity(f.edge, "InventoryRO", "InventoryRW", nil)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := DeployUpdaterFacade(f.edge, "Updater")
	if err != nil {
		t.Fatal(err)
	}
	uf.Register("InventoryRW", ro)
	sp := NewSyncPropagator(f.main, []SyncTarget{{Server: "edge", Facade: "Updater"}}, 512)
	sp.BestEffort = true
	rw.AddPropagator(sp)
	if err := f.net.SetLinkState("main", "edge", false); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		// Best-effort: the write succeeds despite the partition.
		if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(1)}); err != nil {
			t.Fatalf("best-effort write failed: %v", err)
		}
	})
	if sp.Skipped() != 1 {
		t.Fatalf("skipped = %d, want 1", sp.Skipped())
	}
	if ro.Pushes() != 0 {
		t.Fatalf("pushes = %d, want 0 (partitioned)", ro.Pushes())
	}
}

func TestSyncPropagatorStrictFailsOnPartition(t *testing.T) {
	f := newFixture(t)
	rw, err := DeployRWEntity(f.main, "InventoryRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeployUpdaterFacade(f.edge, "Updater"); err != nil {
		t.Fatal(err)
	}
	rw.AddPropagator(NewSyncPropagator(f.main, []SyncTarget{{Server: "edge", Facade: "Updater"}}, 512))
	if err := f.net.SetLinkState("main", "edge", false); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(1)}); err == nil {
			t.Fatal("strict zero-staleness write succeeded across a partition")
		}
	})
}

func TestDeltaPushMergesChangedFieldsOnly(t *testing.T) {
	f := newFixture(t)
	rw, err := DeployRWEntity(f.main, "InventoryRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	rw.SetDeltaPush(true)
	ro, err := DeployROEntity(f.edge, "InventoryRO", "InventoryRW", nil)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := DeployUpdaterFacade(f.edge, "Updater")
	if err != nil {
		t.Fatal(err)
	}
	uf.Register("InventoryRW", ro)
	rw.AddPropagator(NewSyncPropagator(f.main, []SyncTarget{{Server: "edge", Facade: "Updater"}}, 4096))
	ro.Preload(sqldb.Str("i1"), State{"item_id": sqldb.Str("i1"), "qty": sqldb.Int(10)})
	f.run(t, func(p *sim.Proc) {
		if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(7)}); err != nil {
			t.Fatalf("update: %v", err)
		}
		st, err := ro.Get(p, sqldb.Str("i1"))
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		// Changed field merged; untouched fields survive.
		if st["qty"].AsInt() != 7 || st["item_id"].AsString() != "i1" {
			t.Fatalf("merged state = %v", st)
		}
	})
}

func TestDeltaPushWithoutLocalCopyIsIgnored(t *testing.T) {
	f := newFixture(t)
	fetches := 0
	rw, err := DeployRWEntity(f.main, "InventoryRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	rw.SetDeltaPush(true)
	ro, err := DeployROEntity(f.edge, "InventoryRO", "InventoryRW", func(p *sim.Proc, pk sqldb.Value) (State, error) {
		fetches++
		return rw.Load(p, pk)
	})
	if err != nil {
		t.Fatal(err)
	}
	uf, err := DeployUpdaterFacade(f.edge, "Updater")
	if err != nil {
		t.Fatal(err)
	}
	uf.Register("InventoryRW", ro)
	rw.AddPropagator(NewSyncPropagator(f.main, []SyncTarget{{Server: "edge", Facade: "Updater"}}, 1024))
	f.run(t, func(p *sim.Proc) {
		// Delta arrives for an entity the replica never loaded: ignored.
		if _, err := rw.UpdateFields(p, sqldb.Str("i2"), State{"qty": sqldb.Int(1)}); err != nil {
			t.Fatalf("update: %v", err)
		}
		// The read fetches the full, correct state.
		st, err := ro.Get(p, sqldb.Str("i2"))
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if st["qty"].AsInt() != 1 {
			t.Fatalf("qty = %v", st["qty"])
		}
	})
	if fetches != 1 {
		t.Fatalf("fetches = %d", fetches)
	}
}

func TestUpdateWireBytes(t *testing.T) {
	full := Update{State: State{"a": sqldb.Int(1), "b": sqldb.Int(2)}}
	delta := Update{State: State{"a": sqldb.Int(1)}, Delta: true}
	del := Update{Deleted: true}
	if full.WireBytes() != 1024 {
		t.Fatalf("full = %d", full.WireBytes())
	}
	if delta.WireBytes() >= full.WireBytes() {
		t.Fatalf("delta %d not smaller than full %d", delta.WireBytes(), full.WireBytes())
	}
	if del.WireBytes() <= 0 {
		t.Fatalf("deleted = %d", del.WireBytes())
	}
}

func TestDescriptorDeltaPushRequiresPushRefresh(t *testing.T) {
	bad := &ExtendedDescriptor{
		Replicas: []ReplicaSpec{{
			Bean: "A", Update: SyncUpdate, Refresh: PullRefresh, DeltaPush: true,
		}},
	}
	if err := bad.Validate(); !errors.Is(err, ErrBadDescriptor) {
		t.Fatalf("err = %v", err)
	}
	good := &ExtendedDescriptor{
		Replicas: []ReplicaSpec{{
			Bean: "A", Update: SyncUpdate, Refresh: PushRefresh, DeltaPush: true,
		}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelSyncPushOverlapsFanOut(t *testing.T) {
	// Two edges behind the same 100ms one-way WAN: sequential pushes cost
	// two push latencies, parallel one.
	build := func(parallel bool) time.Duration {
		env := sim.NewEnv(3)
		net := simnet.New(env)
		for _, id := range []string{"main", "e1", "e2"} {
			if _, err := net.AddNode(id, 2); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range []string{"e1", "e2"} {
			if _, err := net.AddLink("main", id, 100*time.Millisecond, 1e12); err != nil {
				t.Fatal(err)
			}
		}
		db := sqldb.New()
		if _, err := db.Exec(`CREATE TABLE kv (id INT PRIMARY KEY, v INT NOT NULL)`); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(`INSERT INTO kv VALUES (1, 0)`); err != nil {
			t.Fatal(err)
		}
		rt := rmi.NewRuntime(net, rmi.DefaultOptions)
		mk := func(name string) *Server {
			s, err := NewServer(Config{
				Name: name, DBNode: "main", DB: db, Net: net, RMI: rt,
				Web: web.DefaultOptions, Costs: DefaultCostModel,
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		main, e1, e2 := mk("main"), mk("e1"), mk("e2")
		rw, err := DeployRWEntity(main, "KV", "kv", "id")
		if err != nil {
			t.Fatal(err)
		}
		for _, edge := range []*Server{e1, e2} {
			ro, err := DeployROEntity(edge, "KVRO", "KV", nil)
			if err != nil {
				t.Fatal(err)
			}
			uf, err := DeployUpdaterFacade(edge, "Updater")
			if err != nil {
				t.Fatal(err)
			}
			uf.Register("KV", ro)
		}
		sp := NewSyncPropagator(main, []SyncTarget{
			{Server: "e1", Facade: "Updater"},
			{Server: "e2", Facade: "Updater"},
		}, 512)
		sp.Parallel = parallel
		rw.AddPropagator(sp)
		var cost time.Duration
		env.Spawn("writer", func(p *sim.Proc) {
			start := p.Now()
			if _, err := rw.UpdateFields(p, sqldb.Int(1), State{"v": sqldb.Int(1)}); err != nil {
				t.Errorf("update: %v", err)
			}
			cost = p.Now() - start
		})
		env.RunAll()
		env.Close()
		return cost
	}
	seq := build(false)
	par := build(true)
	if par >= seq-200*time.Millisecond {
		t.Fatalf("parallel push %v vs sequential %v: no overlap", par, seq)
	}
	// Parallel still blocks for at least one full push.
	if par < 250*time.Millisecond {
		t.Fatalf("parallel push %v, want >= one push latency", par)
	}
}
