// Package container implements an EJB-style component container model on top
// of the sim/simnet/rmi/jms/web/sqldb substrates: application servers,
// deployment descriptors, stateless and stateful session beans, entity beans
// (read-write and read-only replicas), message-driven update subscribers,
// query-result caches, and the update-propagation machinery behind the
// paper's read-mostly and asynchronous-update patterns.
//
// A Server corresponds to one JBoss/Jetty instance of the paper's testbed:
// it owns a node's CPU, a servlet container, a JNDI registry view, a stub
// cache (EJBHomeFactory) and the set of beans deployed on it. Beans are
// invoked through RMI stubs, so a co-located call costs local dispatch while
// a cross-server call pays the full wide-area RMI price.
package container

import (
	"errors"
	"fmt"
	"time"

	"wadeploy/internal/jms"
	"wadeploy/internal/metrics"
	"wadeploy/internal/rmi"
	"wadeploy/internal/sim"
	"wadeploy/internal/simnet"
	"wadeploy/internal/sqldb"
	"wadeploy/internal/trace"
	"wadeploy/internal/web"
)

// noopSpan avoids allocating a fresh closure on untraced SQL paths.
var noopSpan = func() {}

// Errors shared by the container layer.
var (
	ErrNoSuchBean   = errors.New("container: no such bean")
	ErrNoSuchMethod = errors.New("container: no such method")
	ErrNotDeployed  = errors.New("container: bean not deployed on this server")
)

// BeanKind enumerates the J2EE component kinds used by the paper.
type BeanKind int

// Bean kinds.
const (
	StatelessSession BeanKind = iota + 1
	StatefulSession
	Entity
	MessageDriven
)

func (k BeanKind) String() string {
	switch k {
	case StatelessSession:
		return "stateless-session"
	case StatefulSession:
		return "stateful-session"
	case Entity:
		return "entity"
	case MessageDriven:
		return "message-driven"
	default:
		return fmt.Sprintf("BeanKind(%d)", int(k))
	}
}

// Persistence selects entity-bean persistence management.
type Persistence int

// Persistence modes: bean-managed (hand-written SQL) or container-managed
// (SQL rendered from the abstract schema).
const (
	BMP Persistence = iota + 1
	CMP
)

// CostModel is the container-side CPU cost model.
type CostModel struct {
	// MethodCPU is charged per business-method invocation: transaction
	// demarcation, security checks and interceptors.
	MethodCPU time.Duration

	// EntityLoadCPU / EntityStoreCPU cover ejbLoad/ejbStore field
	// marshalling on top of the SQL cost.
	EntityLoadCPU  time.Duration
	EntityStoreCPU time.Duration

	// CacheHitCPU is the cost of serving state from a read-only bean or
	// query cache.
	CacheHitCPU time.Duration

	// JDBCRounds is the number of network round trips per SQL statement
	// between an application server and the database node (connection
	// management makes this exceed 1 for non-pooled access).
	JDBCRounds float64
}

// DefaultCostModel approximates the paper's JBoss 2.4/3.0 era containers.
var DefaultCostModel = CostModel{
	MethodCPU:      400 * time.Microsecond,
	EntityLoadCPU:  300 * time.Microsecond,
	EntityStoreCPU: 300 * time.Microsecond,
	CacheHitCPU:    150 * time.Microsecond,
	JDBCRounds:     1,
}

// Server is one application server: a container environment on a node.
type Server struct {
	name  string
	node  *simnet.Node
	net   *simnet.Network
	rt    *rmi.Runtime
	web   *web.Container
	db    *sqldb.DB
	dbSrv *simnet.Node // node the database runs on
	jms   *jms.Provider
	costs CostModel
	stubs *rmi.StubCache

	beans map[string]*binding

	// replicaDB, when set, is a local asynchronous replica of the
	// deployment's database (dbrepl); SQLReplica reads execute against it
	// at local cost.
	replicaDB *sqldb.DB

	sqlStatements int64

	mSQL        *metrics.Counter
	mReplicaSQL *metrics.Counter
}

// binding records a bean deployed on this server.
type binding struct {
	name string
	kind BeanKind
}

// Config configures a Server.
type Config struct {
	Name   string // node ID this server runs on
	DBNode string // node ID the database runs on
	DB     *sqldb.DB
	Net    *simnet.Network
	RMI    *rmi.Runtime
	JMS    *jms.Provider // may be nil if the deployment does not use messaging
	Web    web.Options
	Costs  CostModel
}

// NewServer creates an application server on cfg.Name.
func NewServer(cfg Config) (*Server, error) {
	node := cfg.Net.Node(cfg.Name)
	if node == nil {
		return nil, fmt.Errorf("container: no such node %s", cfg.Name)
	}
	dbNode := cfg.Net.Node(cfg.DBNode)
	if dbNode == nil {
		return nil, fmt.Errorf("container: no such DB node %s", cfg.DBNode)
	}
	wc, err := web.NewContainer(cfg.Net, cfg.Name, cfg.Web)
	if err != nil {
		return nil, fmt.Errorf("container: web tier: %w", err)
	}
	reg := cfg.Net.Env().Metrics()
	return &Server{
		name:        cfg.Name,
		node:        node,
		net:         cfg.Net,
		rt:          cfg.RMI,
		web:         wc,
		db:          cfg.DB,
		dbSrv:       dbNode,
		jms:         cfg.JMS,
		costs:       cfg.Costs,
		stubs:       rmi.NewStubCache(cfg.RMI, cfg.Name),
		beans:       make(map[string]*binding),
		mSQL:        reg.CounterVec("container_sql_statements_total", "server").With(cfg.Name),
		mReplicaSQL: reg.CounterVec("container_replica_sql_statements_total", "server").With(cfg.Name),
	}, nil
}

// Name returns the server's node ID.
func (s *Server) Name() string { return s.name }

// Web returns the server's servlet container.
func (s *Server) Web() *web.Container { return s.web }

// RMI returns the shared RMI runtime.
func (s *Server) RMI() *rmi.Runtime { return s.rt }

// JMS returns the deployment's messaging provider (nil when unused).
func (s *Server) JMS() *jms.Provider { return s.jms }

// DB returns the shared database handle.
func (s *Server) DB() *sqldb.DB { return s.db }

// Costs returns the server's cost model.
func (s *Server) Costs() CostModel { return s.costs }

// Env returns the simulation environment.
func (s *Server) Env() *sim.Env { return s.net.Env() }

// Beans returns the number of beans deployed on this server.
func (s *Server) Beans() int { return len(s.beans) }

// HasBean reports whether a bean with the given name is deployed here.
func (s *Server) HasBean(name string) bool {
	_, ok := s.beans[name]
	return ok
}

// SQLStatements returns how many SQL statements this server has issued.
func (s *Server) SQLStatements() int64 { return s.sqlStatements }

// Compute charges d of CPU time on this server, queueing when all slots are
// busy.
func (s *Server) Compute(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	trace.Use(p, s.node.CPU, s.name, d)
}

// bindName is the JNDI name a bean is bound under.
func bindName(bean string) string { return "ejb/" + bean }

// bind registers a bean's invocation handler in this server's JNDI registry.
func (s *Server) bind(name string, kind BeanKind, h rmi.Handler) error {
	if _, dup := s.beans[name]; dup {
		return fmt.Errorf("container: bean %s already deployed on %s", name, s.name)
	}
	if _, err := s.rt.Bind(s.name, bindName(name), h); err != nil {
		return fmt.Errorf("container: deploy %s on %s: %w", name, s.name, err)
	}
	s.beans[name] = &binding{name: name, kind: kind}
	return nil
}

// rebind swaps the handler bound under a bean's JNDI name in place, binding
// fresh when the name is absent — the live-migration cut-over primitive.
// The swap happens within the current simulation event, so cached stubs
// dispatch to the new handler from their next call and no request ever
// observes the name unbound.
func (s *Server) rebind(name string, kind BeanKind, h rmi.Handler) error {
	if _, err := s.rt.Rebind(s.name, bindName(name), h); err != nil {
		return fmt.Errorf("container: rebind %s on %s: %w", name, s.name, err)
	}
	s.beans[name] = &binding{name: name, kind: kind}
	return nil
}

// StubFor returns a cached stub for a bean deployed on targetServer,
// modeling the EJBHomeFactory pattern (one JNDI lookup ever, then cached).
func (s *Server) StubFor(p *sim.Proc, targetServer, bean string) (*rmi.Stub, error) {
	return s.stubs.Get(p, targetServer, bindName(bean))
}

// LookupUncached performs a full JNDI lookup (no stub caching) — the
// anti-pattern the EJBHomeFactory removes, kept for the centralized
// baseline and for tests that quantify the difference.
func (s *Server) LookupUncached(p *sim.Proc, targetServer, bean string) (*rmi.Stub, error) {
	return s.rt.Lookup(p, s.name, targetServer, bindName(bean))
}

// AttachReplicaDB gives this server a local database replica for
// SQLReplica reads (the Section 6 database-replication extension).
func (s *Server) AttachReplicaDB(db *sqldb.DB) { s.replicaDB = db }

// HasReplicaDB reports whether a local database replica is attached.
func (s *Server) HasReplicaDB() bool { return s.replicaDB != nil }

// SQLReplica executes a read-only statement against this server's local
// database replica: no JDBC round trips, cost charged to this node's CPU.
func (s *Server) SQLReplica(p *sim.Proc, query string, args ...sqldb.Value) (*sqldb.Result, error) {
	if s.replicaDB == nil {
		return nil, fmt.Errorf("container: %s has no replica DB", s.name)
	}
	s.sqlStatements++
	s.mReplicaSQL.Inc()
	endSQL := noopSpan
	if trace.Active(p) {
		endSQL = trace.Op(p, "sql-replica", s.replicaDB.Describe(query), s.name, "", trace.CauseService)
	}
	defer endSQL()
	res, err := s.replicaDB.Exec(query, args...)
	if err != nil {
		return nil, err
	}
	trace.Use(p, s.node.CPU, s.name, res.Cost)
	return res, nil
}

// SQL executes one statement against the deployment's database on behalf of
// this server: JDBC round trips to the DB node (when remote) plus the
// statement's cost charged to the DB node's CPU.
func (s *Server) SQL(p *sim.Proc, query string, args ...sqldb.Value) (*sqldb.Result, error) {
	return s.sqlOn(p, nil, query, args...)
}

// SQLTx executes one statement within tx, with the same cost accounting.
func (s *Server) SQLTx(p *sim.Proc, tx *sqldb.Tx, query string, args ...sqldb.Value) (*sqldb.Result, error) {
	return s.sqlOn(p, tx, query, args...)
}

func (s *Server) sqlOn(p *sim.Proc, tx *sqldb.Tx, query string, args ...sqldb.Value) (*sqldb.Result, error) {
	s.sqlStatements++
	s.mSQL.Inc()
	remote := s.dbSrv.ID != s.name
	endSQL := noopSpan
	if trace.Active(p) {
		sqlCause := trace.CauseService
		var sqlPeer string
		if remote {
			sqlPeer = s.name
			if s.net.WideArea(s.name, s.dbSrv.ID) {
				sqlCause = trace.CauseWAN
			}
		}
		endSQL = trace.Op(p, "sql", s.db.Describe(query), s.dbSrv.ID, sqlPeer, sqlCause)
	}
	defer endSQL()
	if remote {
		rounds := s.costs.JDBCRounds
		if rounds < 1 {
			rounds = 1
		}
		rtt, err := s.net.RTT(s.name, s.dbSrv.ID)
		if err != nil {
			return nil, fmt.Errorf("container: jdbc %s->%s: %w", s.name, s.dbSrv.ID, err)
		}
		p.Sleep(time.Duration(rounds * float64(rtt)))
	}
	var res *sqldb.Result
	var err error
	if tx != nil {
		res, err = tx.Exec(query, args...)
	} else {
		res, err = s.db.Exec(query, args...)
	}
	if err != nil {
		return nil, err
	}
	// Charge the statement's service time to the database node's CPU.
	trace.Use(p, s.dbSrv.CPU, s.dbSrv.ID, res.Cost)
	return res, nil
}
