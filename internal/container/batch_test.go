package container

import (
	"errors"
	"strings"
	"testing"
	"time"

	"wadeploy/internal/sim"
	"wadeploy/internal/sqldb"
)

func TestExtendedDescriptorValidateReplicationRules(t *testing.T) {
	good := []*ExtendedDescriptor{
		{Replicas: []ReplicaSpec{{Bean: "A", Update: LeaseUpdate, Refresh: PushRefresh, MaxStaleness: time.Second}}},
		{Replicas: []ReplicaSpec{{Bean: "A", Update: LeaseUpdate, Refresh: PushRefresh, BatchWindow: 100 * time.Millisecond}}},
		{Topic: "t", Replicas: []ReplicaSpec{{Bean: "A", Update: AsyncUpdate, Refresh: PushRefresh, BatchWindow: 100 * time.Millisecond}}},
		{Replicas: []ReplicaSpec{{Bean: "A", Update: SyncUpdate, Refresh: PushRefresh, FullState: true}}},
	}
	for i, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("good[%d]: rejected: %v", i, err)
		}
	}
	bad := []struct {
		d    *ExtendedDescriptor
		want string
	}{
		{&ExtendedDescriptor{Replicas: []ReplicaSpec{{Bean: "A", Refresh: PushRefresh}}}, "update mode not set"},
		{&ExtendedDescriptor{Replicas: []ReplicaSpec{{Bean: "A", Update: SyncUpdate}}}, "refresh mode not set"},
		{&ExtendedDescriptor{Replicas: []ReplicaSpec{{Bean: "A", Update: SyncUpdate, Refresh: PushRefresh, DeltaPush: true, FullState: true}}}, "conflicts with full-state"},
		{&ExtendedDescriptor{Replicas: []ReplicaSpec{{Bean: "A", Update: SyncUpdate, Refresh: PushRefresh, MaxStaleness: -1}}}, "negative max staleness"},
		{&ExtendedDescriptor{Replicas: []ReplicaSpec{{Bean: "A", Update: SyncUpdate, Refresh: PushRefresh, BatchWindow: -1}}}, "negative batch window"},
		{&ExtendedDescriptor{Replicas: []ReplicaSpec{{Bean: "A", Update: LeaseUpdate, Refresh: PullRefresh, MaxStaleness: time.Second}}}, "lease update requires push refresh"},
		{&ExtendedDescriptor{Replicas: []ReplicaSpec{{Bean: "A", Update: LeaseUpdate, Refresh: PushRefresh}}}, "staleness budget"},
		{&ExtendedDescriptor{Replicas: []ReplicaSpec{{Bean: "A", Update: SyncUpdate, Refresh: PushRefresh, BatchWindow: time.Second}}}, "sync updates are unbatched"},
	}
	for i, c := range bad {
		err := c.d.Validate()
		if !errors.Is(err, ErrBadDescriptor) {
			t.Errorf("bad[%d]: err = %v, want ErrBadDescriptor", i, err)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("bad[%d]: err = %v, want substring %q", i, err, c.want)
		}
	}
	if LeaseUpdate.String() != "lease" {
		t.Fatalf("LeaseUpdate.String() = %q", LeaseUpdate.String())
	}
}

func TestCoalesceUpdatesLastWriterWins(t *testing.T) {
	in := []Update{
		{Bean: "A", PK: sqldb.Str("1"), Delta: true, State: State{"x": sqldb.Int(1)}, CommittedAt: 1},
		{Bean: "B", PK: sqldb.Str("1"), Delta: true, State: State{"x": sqldb.Int(7)}, CommittedAt: 2},
		{Bean: "A", PK: sqldb.Str("1"), Delta: true, State: State{"y": sqldb.Int(2)}, CommittedAt: 3},
		{Bean: "A", PK: sqldb.Str("1"), Delta: true, State: State{"x": sqldb.Int(9)}, CommittedAt: 4},
	}
	out := CoalesceUpdates(in)
	if len(out) != 2 {
		t.Fatalf("coalesced to %d updates, want 2", len(out))
	}
	// First appearance order: A before B.
	a := out[0]
	if a.Bean != "A" || a.State["x"].AsInt() != 9 || a.State["y"].AsInt() != 2 || a.CommittedAt != 4 {
		t.Fatalf("A coalesced wrong: %+v", a)
	}
	if out[1].Bean != "B" || out[1].State["x"].AsInt() != 7 {
		t.Fatalf("B coalesced wrong: %+v", out[1])
	}
	// Input must not be mutated (the log replay path shares the entries).
	if in[0].State["x"].AsInt() != 1 || len(in[0].State) != 1 {
		t.Fatalf("input update mutated: %+v", in[0])
	}
}

func TestCoalesceUpdatesDeleteAndReinsert(t *testing.T) {
	in := []Update{
		{Bean: "A", PK: sqldb.Str("1"), Delta: true, State: State{"x": sqldb.Int(1)}},
		{Bean: "A", PK: sqldb.Str("1"), Deleted: true},
		{Bean: "A", PK: sqldb.Str("2"), Deleted: true},
		{Bean: "A", PK: sqldb.Str("2"), State: State{"x": sqldb.Int(5)}},
	}
	out := CoalesceUpdates(in)
	if len(out) != 2 {
		t.Fatalf("coalesced to %d updates, want 2", len(out))
	}
	if !out[0].Deleted {
		t.Fatalf("pk 1 should coalesce to a tombstone: %+v", out[0])
	}
	if out[1].Deleted || out[1].Delta || out[1].State["x"].AsInt() != 5 {
		t.Fatalf("pk 2 should coalesce to the re-inserted full state: %+v", out[1])
	}
}

func TestBatchingPropagatorValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := NewBatchingPropagator(f.main, 0, "t", nil, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewBatchingPropagator(f.main, time.Second, "t", []SyncTarget{{Server: "edge", Facade: "U"}}, 0); err == nil {
		t.Fatal("topic+targets accepted")
	}
}

// wireBatched deploys a delta-push RW on main and a push-fed replica on edge
// joined by a target-mode (lease) batching propagator with the given window.
func wireBatched(t *testing.T, f *fixture, window time.Duration) (*RWEntity, *ROEntity, *BatchingPropagator) {
	t.Helper()
	rw, err := DeployRWEntity(f.main, "InvRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	rw.SetDeltaPush(true)
	ro, err := DeployROEntity(f.edge, "InvRO", "InvRW", nil)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := DeployUpdaterFacade(f.edge, "Updater")
	if err != nil {
		t.Fatal(err)
	}
	uf.Register("InvRW", ro)
	ro.Preload(sqldb.Str("i1"), State{"item_id": sqldb.Str("i1"), "qty": sqldb.Int(10)})
	ro.Preload(sqldb.Str("i2"), State{"item_id": sqldb.Str("i2"), "qty": sqldb.Int(5)})
	bp, err := NewBatchingPropagator(f.main, window, "", []SyncTarget{{Server: "edge", Facade: "Updater"}}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	rw.AddPropagator(bp)
	return rw, ro, bp
}

func TestBatchingPropagatorCoalescesOneMessagePerWindow(t *testing.T) {
	f := newFixture(t)
	rw, ro, bp := wireBatched(t, f, 200*time.Millisecond)
	f.run(t, func(p *sim.Proc) {
		// Five commits to i1 plus one to i2 inside one window: one WAN
		// message carrying two coalesced deltas.
		for i := 1; i <= 5; i++ {
			if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(int64(100 + i))}); err != nil {
				t.Errorf("update: %v", err)
			}
		}
		if _, err := rw.UpdateFields(p, sqldb.Str("i2"), State{"qty": sqldb.Int(50)}); err != nil {
			t.Errorf("update: %v", err)
		}
		commitDone := p.Now()
		p.Sleep(time.Second) // window flush + WAN delivery
		if got := p.Now() - commitDone; got < time.Second {
			t.Errorf("writer slept %v, want a full second (writer must not block on the WAN)", got)
		}
		st, err := ro.Get(p, sqldb.Str("i1"))
		if err != nil || st["qty"].AsInt() != 105 {
			t.Errorf("i1 after flush: %v, %v (want qty 105)", st, err)
		}
		st, err = ro.Get(p, sqldb.Str("i2"))
		if err != nil || st["qty"].AsInt() != 50 {
			t.Errorf("i2 after flush: %v, %v (want qty 50)", st, err)
		}
	})
	if bp.Commits() != 6 || bp.Coalesced() != 4 {
		t.Fatalf("commits=%d coalesced=%d, want 6/4", bp.Commits(), bp.Coalesced())
	}
	if bp.Flushes() != 1 || bp.Messages() != 1 {
		t.Fatalf("flushes=%d messages=%d, want 1/1", bp.Flushes(), bp.Messages())
	}
	if bp.WireBytesTotal() <= 0 {
		t.Fatal("no wire bytes accounted")
	}
}

func TestBatchingPropagatorSeparateWindows(t *testing.T) {
	f := newFixture(t)
	rw, ro, bp := wireBatched(t, f, 50*time.Millisecond)
	f.run(t, func(p *sim.Proc) {
		if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(1)}); err != nil {
			t.Errorf("update: %v", err)
		}
		p.Sleep(500 * time.Millisecond) // window 1 flushed, batcher idle
		if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(2)}); err != nil {
			t.Errorf("update: %v", err)
		}
		p.Sleep(500 * time.Millisecond)
		st, err := ro.Get(p, sqldb.Str("i1"))
		if err != nil || st["qty"].AsInt() != 2 {
			t.Errorf("i1: %v, %v (want qty 2)", st, err)
		}
	})
	if bp.Flushes() != 2 || bp.Messages() != 2 {
		t.Fatalf("flushes=%d messages=%d, want 2/2 (idle gap must close the window)", bp.Flushes(), bp.Messages())
	}
}

func TestBatchingPropagatorTopicMode(t *testing.T) {
	f := newFixture(t)
	rw, err := DeployRWEntity(f.main, "InvRW", "inventory", "item_id")
	if err != nil {
		t.Fatal(err)
	}
	rw.SetDeltaPush(true)
	ro, err := DeployROEntity(f.edge, "InvRO", "InvRW", nil)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := DeployUpdaterFacade(f.edge, "Updater")
	if err != nil {
		t.Fatal(err)
	}
	uf.Register("InvRW", ro)
	ro.Preload(sqldb.Str("i1"), State{"item_id": sqldb.Str("i1"), "qty": sqldb.Int(10)})
	bp, err := NewBatchingPropagator(f.main, 100*time.Millisecond, "updates", nil, 1024)
	if err != nil {
		t.Fatal(err)
	}
	rw.AddPropagator(bp)
	if _, err := DeployUpdateSubscriber(f.edge, "Sub", "updates", uf); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		for i := 1; i <= 3; i++ {
			if _, err := rw.UpdateFields(p, sqldb.Str("i1"), State{"qty": sqldb.Int(int64(i))}); err != nil {
				t.Errorf("update: %v", err)
			}
		}
		p.Sleep(time.Second)
		st, err := ro.Get(p, sqldb.Str("i1"))
		if err != nil || st["qty"].AsInt() != 3 {
			t.Errorf("i1: %v, %v (want qty 3)", st, err)
		}
	})
	if bp.Messages() != 1 {
		t.Fatalf("messages=%d, want one JMS publish for the window", bp.Messages())
	}
}

// The coalescing hot path (a same-key delta folding into an already-pending
// update inside an armed window) must stay allocation-flat: the only
// allocation allowed is the pk-key string the propagator chain already pays
// everywhere else.
func TestBatchingPropagatorCoalesceAllocs(t *testing.T) {
	f := newFixture(t)
	bp, err := NewBatchingPropagator(f.main, time.Second, "", []SyncTarget{{Server: "edge", Facade: "Updater"}}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	seedBatch := []Update{{Bean: "Inv", PK: sqldb.Str("i1"), Delta: true, State: State{"qty": sqldb.Int(0)}}}
	if err := bp.Propagate(nil, seedBatch); err != nil { // arms the window, inserts the pending entry
		t.Fatal(err)
	}
	batch := []Update{{Bean: "Inv", PK: sqldb.Str("i1"), Delta: true, State: State{"qty": sqldb.Int(1)}}}
	allocs := testing.AllocsPerRun(200, func() {
		if err := bp.Propagate(nil, batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("coalescing a pending same-key delta allocates %.1f times per commit, want <= 1 (the pk key)", allocs)
	}
}
