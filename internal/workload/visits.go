package workload

import "math/rand"

// ExpectedVisits estimates the expected number of visits to each page in
// one session of a generator, by averaging n generated sessions from a
// private deterministic RNG. The planner derives its page weights from this
// so the analytic model and the simulated workload share one definition of
// a session; deterministic inputs give a deterministic map.
func ExpectedVisits(gen SessionGen, n int, seed int64) map[string]float64 {
	if n <= 0 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[string]float64)
	for i := 0; i < n; i++ {
		for _, step := range gen(rng) {
			counts[step.Page]++
		}
	}
	for page := range counts {
		counts[page] /= float64(n)
	}
	return counts
}
