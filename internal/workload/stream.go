package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"wadeploy/internal/sim"
	"wadeploy/internal/trace"
)

// The streaming engine runs session *classes* rather than session processes:
// every client of a class shares one generator, one RNG, one scratch Step and
// one statistics collector, while per-client state is a fixed ~90-byte task
// struct in a single slab allocation. Memory is therefore bounded per class
// (plus the slab, linear in clients at well under 100 B each), not per
// session: 100k concurrent clients fit in a few megabytes where the process
// driver spends a goroutine stack, a 5 KB rand.Rand and a fresh []Step per
// session. Sessions advance as closure-free sim.Task state machines — two
// engine events per page (request start, response completion), no goroutine
// handoff — and classes are partitioned across sim.Shards lanes by simnet
// node, so one large run parallelizes across OS threads with deterministic
// results for any worker count.

// StreamState is the per-session generator state: the step position plus
// three scratch registers generators use to carry cross-step context (the
// Pet Store browser's current category/product, the bidder's item, ...).
type StreamState struct {
	Pos int32
	R   [3]int64
}

// StreamGen writes the step at position st.Pos of one session into step
// (already cleared) and returns false — writing nothing — when the session
// is complete. The engine advances Pos; generators read st.R freely and may
// draw from rng on any step. A fresh session arrives as the zero StreamState.
type StreamGen func(rng *rand.Rand, st *StreamState, step *Step) bool

// StreamRequest models one page request synchronously: it returns the
// simulated response time (or an error counted against the page). It runs on
// the class's lane under the engine's one-worker-per-lane round protocol, so
// it may use the lane env's clock and RNG but must not block.
type StreamRequest func(env *sim.Env, c *StreamClass, st *StreamState, step *Step) (time.Duration, error)

// StreamClass describes one homogeneous client population.
type StreamClass struct {
	Name    string
	Node    string // simnet node; also the shard partitioning key
	Local   bool
	Pattern string
	Clients int

	// Delay is the soft think time, as in Group: successive request starts
	// within a session are Delay apart regardless of response times.
	Delay time.Duration

	Gen     StreamGen
	Request StreamRequest

	// TraceWAN, used only when tracing is enabled, reports how much of one
	// request's response time was wide-area wait. The streaming request
	// models are closed-form, so the critical-path split is declared by the
	// model rather than observed span by span.
	TraceWAN func(page string, rt time.Duration) time.Duration
}

// StreamConfig drives one streaming run.
type StreamConfig struct {
	Seed    int64
	Classes []StreamClass

	Warmup   time.Duration
	Duration time.Duration

	// Shards is the lane count (default 1). Classes are assigned to lanes
	// by their Node's first-appearance order, so co-located classes share a
	// lane. Changing Shards changes lane seeds and therefore results;
	// changing Workers never does.
	Shards int

	// Workers caps OS-level parallelism within each round (default:
	// Shards). Results are byte-identical for any value.
	Workers int

	// Window is the barrier lookahead passed to sim.NewShards (default
	// 10ms). The streaming engine itself sends no cross-lane traffic, so
	// the window only sets barrier frequency.
	Window time.Duration

	// Trace, when non-nil, installs a flight-recorder tracer on every lane.
	// Trace IDs derive from (class name, slab index, page ordinal) — pure
	// logical identity — so the sampled ID set is byte-identical for any
	// Workers value and invariant to the Shards count, even though response
	// times themselves depend on lane seeds.
	Trace *trace.Options
}

// StreamResult aggregates one streaming run.
type StreamResult struct {
	Stats    *Stats
	Events   uint64 // engine events dispatched across all lanes
	Pages    uint64 // page requests completed (including warm-up)
	Sessions uint64 // sessions completed (including warm-up)

	// Tracing outputs, populated when StreamConfig.Trace is set: the merged
	// per-lane blame aggregates, the surviving flight-recorder contents
	// (ordered by root start time, then trace ID), and the recorder totals.
	Blame        *trace.Aggregator
	Traces       []*trace.Trace
	TraceSampled uint64 // traces recorded (post-sampling), all lanes
	TraceDropped uint64 // flight-recorder evictions, all lanes
}

// classRunner is the shared per-(class, lane) state every session of the
// class uses.
type classRunner struct {
	class   *StreamClass
	env     *sim.Env
	stats   *Stats
	rng     *rand.Rand
	scratch Step
	end     time.Duration

	// tracer is the lane's tracer, nil when tracing is off; classKey seeds
	// per-session trace identity.
	tracer   *trace.Tracer
	classKey uint64

	pages    uint64
	sessions uint64
}

// streamSession is one client: a self-rescheduling task alternating between
// page-start and completion firings.
type streamSession struct {
	cr        *classRunner
	page      string
	pageStart time.Duration
	rt        time.Duration
	st        StreamState
	// key is the session's stable trace identity (class key × slab index);
	// seq counts completed page requests. Both are maintained only when the
	// lane has a tracer.
	key      uint64
	seq      uint64
	inFlight bool
	failed   bool
}

// Fire advances the session state machine by one transition.
func (s *streamSession) Fire(e *sim.Env) {
	cr := s.cr
	if s.inFlight {
		// Response completion: record, then pace the next request start to
		// max(pageStart+Delay, now) — the driver's soft think time.
		s.inFlight = false
		if s.failed {
			cr.stats.RecordError(e.Now(), s.page)
		} else {
			cr.stats.Record(e.Now(), SeriesKey{Pattern: cr.class.Pattern, Page: s.page, Local: cr.class.Local}, s.rt)
			if tr := cr.tracer; tr != nil {
				if id := trace.PageTraceID(s.key, s.seq); tr.Sampled(id) {
					var wan time.Duration
					if f := cr.class.TraceWAN; f != nil {
						wan = f(s.page, s.rt)
					}
					tr.PageSync(id, cr.class.Pattern, s.page, cr.class.Node, cr.class.Local, s.pageStart, s.rt, wan)
				}
			}
		}
		s.seq++
		cr.pages++
		next := s.pageStart + cr.class.Delay
		if next < e.Now() {
			next = e.Now()
		}
		if next >= cr.end {
			return
		}
		e.AtTask(next, s)
		return
	}
	// Request start: draw the step into the class scratch (params are
	// consumed synchronously by Request, so one map serves every session).
	if e.Now() >= cr.end {
		return
	}
	step := &cr.scratch
	step.Page = ""
	if step.Params != nil {
		clear(step.Params)
	}
	if !cr.class.Gen(cr.rng, &s.st, step) {
		cr.sessions++
		s.st = StreamState{}
		if !cr.class.Gen(cr.rng, &s.st, step) {
			return // generator produces empty sessions; retire the client
		}
	}
	s.st.Pos++
	s.page = step.Page
	s.pageStart = e.Now()
	rt, err := cr.class.Request(e, cr.class, &s.st, step)
	if rt < 0 {
		rt = 0
	}
	s.rt = rt
	s.failed = err != nil
	s.inFlight = true
	e.AtTask(e.Now()+rt, s)
}

// RunStream executes the configured session classes and returns merged
// statistics. Runs are deterministic in (Seed, Classes, durations, Shards,
// Window) and independent of Workers.
func RunStream(cfg StreamConfig) (*StreamResult, error) {
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("workload: no session classes")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: non-positive duration")
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = shards
	}
	window := cfg.Window
	if window <= 0 {
		window = 10 * time.Millisecond
	}
	for i := range cfg.Classes {
		c := &cfg.Classes[i]
		if c.Gen == nil || c.Request == nil {
			return nil, fmt.Errorf("workload: class %q lacks a generator or request model", c.Name)
		}
		if c.Delay <= 0 {
			return nil, fmt.Errorf("workload: class %q has non-positive delay", c.Name)
		}
	}

	lanes := sim.NewShards(cfg.Seed, shards, window)
	var tracers []*trace.Tracer
	if cfg.Trace != nil {
		tracers = make([]*trace.Tracer, shards)
		for i := range tracers {
			tracers[i] = trace.New(lanes.Env(i), *cfg.Trace)
			tracers[i].Install(lanes.Env(i))
		}
	}
	// Class setup order is fixed, so the master stream hands every class the
	// same RNG seed regardless of sharding or worker count.
	master := rand.New(rand.NewSource(cfg.Seed))
	end := cfg.Warmup + cfg.Duration
	shardStats := make([]*Stats, shards)
	for i := range shardStats {
		shardStats[i] = NewStats(cfg.Warmup)
	}
	nodeShard := make(map[string]int)
	runners := make([]*classRunner, 0, len(cfg.Classes))
	for i := range cfg.Classes {
		c := &cfg.Classes[i]
		si, ok := nodeShard[c.Node]
		if !ok {
			si = len(nodeShard) % shards
			nodeShard[c.Node] = si
		}
		cr := &classRunner{
			class: c,
			env:   lanes.Env(si),
			stats: shardStats[si],
			rng:   rand.New(rand.NewSource(master.Int63())),
			end:   end,
		}
		if tracers != nil {
			cr.tracer = tracers[si]
			cr.classKey = trace.ClientKey(c.Name)
		}
		runners = append(runners, cr)
		// One slab holds every client of the class; start times are
		// jittered across one Delay as in the process driver.
		sessions := make([]streamSession, c.Clients)
		for j := range sessions {
			sessions[j].cr = cr
			if tracers != nil {
				sessions[j].key = trace.SessionKey(cr.classKey, uint64(j))
			}
			jitter := time.Duration(cr.rng.Int63n(int64(c.Delay)))
			cr.env.AtTask(jitter, &sessions[j])
		}
	}

	lanes.Run(end, workers)
	res := &StreamResult{Stats: shardStats[0], Events: lanes.Dispatched()}
	lanes.Close()
	for _, st := range shardStats[1:] {
		res.Stats.Merge(st)
	}
	for _, cr := range runners {
		res.Pages += cr.pages
		res.Sessions += cr.sessions
	}
	if tracers != nil {
		res.Blame = trace.NewAggregator()
		for _, tr := range tracers {
			res.Blame.Merge(tr.Aggregator())
			res.Traces = append(res.Traces, tr.Recorder().Traces()...)
			res.TraceSampled += uint64(tr.Recorder().Len()) + uint64(tr.Recorder().Evicted())
			res.TraceDropped += uint64(tr.Recorder().Evicted())
		}
		// Per-lane rings evict independently; order the merged survivors by
		// root start time (then ID) so the view is stable for any Workers.
		sort.Slice(res.Traces, func(i, j int) bool {
			a, b := res.Traces[i], res.Traces[j]
			if a.Root().Start != b.Root().Start {
				return a.Root().Start < b.Root().Start
			}
			return a.ID < b.ID
		})
	}
	return res, nil
}
