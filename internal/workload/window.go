package workload

import "time"

// Bucket is one time slice of a WindowObserver: success/failure counts and
// the response-time sum of successful requests completing in the slice.
type Bucket struct {
	OK, Fail int
	RTSum    time.Duration
}

// Mean returns the bucket's mean successful response time (0 if empty).
func (b Bucket) Mean() time.Duration {
	if b.OK == 0 {
		return 0
	}
	return b.RTSum / time.Duration(b.OK)
}

// Availability returns the bucket's success fraction (1 if empty — an idle
// slice is not an outage).
func (b Bucket) Availability() float64 {
	n := b.OK + b.Fail
	if n == 0 {
		return 1
	}
	return float64(b.OK) / float64(n)
}

// WindowObserver is a time-bucketed request accumulator for adaptation
// reporting: it slices a run into fixed-width buckets and tallies
// success/failure counts and response-time sums per bucket, optionally for
// one client node only. It is a pure accumulator (no RNG, no clock reads),
// so attaching one never perturbs a run — the determinism contract for
// workload Observers.
type WindowObserver struct {
	// Node, when non-empty, restricts accounting to clients on that node.
	Node string
	// Width is the bucket width (required, > 0).
	Width time.Duration

	buckets map[int]*Bucket
}

// NewWindowObserver builds a WindowObserver with the given bucket width,
// counting clients on node only (every node when node is empty).
func NewWindowObserver(node string, width time.Duration) *WindowObserver {
	return &WindowObserver{Node: node, Width: width, buckets: make(map[int]*Bucket)}
}

// Observe is the workload.Observer hook.
func (w *WindowObserver) Observe(now time.Duration, client Client, _ SeriesKey, rt time.Duration, err error) {
	if w.Node != "" && client.Node != w.Node {
		return
	}
	i := int(now / w.Width)
	b := w.buckets[i]
	if b == nil {
		b = &Bucket{}
		w.buckets[i] = b
	}
	if err != nil {
		b.Fail++
		return
	}
	b.OK++
	b.RTSum += rt
}

// Range aggregates the buckets overlapping [from, to).
func (w *WindowObserver) Range(from, to time.Duration) Bucket {
	var out Bucket
	if w.Width <= 0 {
		return out
	}
	lo := int(from / w.Width)
	hi := int((to - 1) / w.Width)
	for i := lo; i <= hi; i++ {
		if b := w.buckets[i]; b != nil {
			out.OK += b.OK
			out.Fail += b.Fail
			out.RTSum += b.RTSum
		}
	}
	return out
}
