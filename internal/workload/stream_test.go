package workload

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"wadeploy/internal/sim"
	"wadeploy/internal/trace"
)

// testStreamGen emits a 5-step session alternating two pages, carrying a
// drawn id through the registers.
func testStreamGen(rng *rand.Rand, st *StreamState, step *Step) bool {
	if st.Pos >= 5 {
		return false
	}
	if st.Pos == 0 {
		st.R[0] = int64(rng.Intn(100))
		step.Page = "Main"
		return true
	}
	if st.Pos%2 == 1 {
		step.Page = "Detail"
		step.Set("id", "x")
	} else {
		step.Page = "List"
	}
	return true
}

func testStreamRequest(env *sim.Env, c *StreamClass, st *StreamState, step *Step) (time.Duration, error) {
	rt := 20 * time.Millisecond
	rt += time.Duration(env.Rand().Int63n(int64(10 * time.Millisecond)))
	if step.Page == "Detail" && st.R[0] == 13 {
		return rt, fmt.Errorf("unlucky id")
	}
	return rt, nil
}

func testStreamConfig(workers int) StreamConfig {
	classes := []StreamClass{}
	for n := 0; n < 4; n++ {
		classes = append(classes, StreamClass{
			Name:    fmt.Sprintf("c%d", n),
			Node:    fmt.Sprintf("node-%d", n),
			Local:   n == 0,
			Pattern: "Browser",
			Clients: 50,
			Delay:   time.Second,
			Gen:     testStreamGen,
			Request: testStreamRequest,
		})
	}
	return StreamConfig{
		Seed:     7,
		Classes:  classes,
		Warmup:   2 * time.Second,
		Duration: 20 * time.Second,
		Shards:   4,
		Workers:  workers,
		Window:   5 * time.Millisecond,
	}
}

func streamFingerprint(res *StreamResult) string {
	out := fmt.Sprintf("events=%d pages=%d sessions=%d errors=%d\n",
		res.Events, res.Pages, res.Sessions, res.Stats.Errors())
	for _, k := range res.Stats.Keys() {
		s := res.Stats.Series(k)
		out += fmt.Sprintf("%s/%s/%v n=%d mean=%v min=%v max=%v p95=%v\n",
			k.Pattern, k.Page, k.Local, s.Count(), s.Mean(), s.Min(), s.Max(), s.Percentile(95))
	}
	return out
}

// TestStreamWorkerCountInvariance pins that results are byte-identical for
// any worker count (the sharded engine's core guarantee surfaced through the
// workload layer).
func TestStreamWorkerCountInvariance(t *testing.T) {
	res, err := RunStream(testStreamConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	want := streamFingerprint(res)
	if res.Stats.TotalSamples() == 0 {
		t.Fatal("no samples recorded")
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := RunStream(testStreamConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		if got := streamFingerprint(res); got != want {
			t.Errorf("workers=%d differs:\n--- workers=1\n%s--- workers=%d\n%s", workers, want, workers, got)
		}
	}
}

// TestStreamSoftThinkPacing checks the request cadence: with response times
// far below Delay, each client completes one page per Delay interval.
func TestStreamSoftThinkPacing(t *testing.T) {
	cfg := StreamConfig{
		Seed: 1,
		Classes: []StreamClass{{
			Name: "c", Node: "n", Pattern: "Browser", Clients: 10,
			Delay: time.Second, Gen: testStreamGen,
			Request: func(env *sim.Env, c *StreamClass, st *StreamState, step *Step) (time.Duration, error) {
				return 10 * time.Millisecond, nil
			},
		}},
		Duration: 100 * time.Second,
	}
	res, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 clients x ~100 page starts (jitter trims at most one per client).
	if res.Pages < 950 || res.Pages > 1010 {
		t.Errorf("pages = %d, want ~1000", res.Pages)
	}
	// 5-step sessions: about one session completion per 5 pages.
	if res.Sessions < 180 || res.Sessions > 210 {
		t.Errorf("sessions = %d, want ~200", res.Sessions)
	}
}

// TestStreamErrorsRecorded checks failed requests land in the error counts,
// not the series.
func TestStreamErrorsRecorded(t *testing.T) {
	res, err := RunStream(testStreamConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ErrorsFor("Detail") == 0 {
		t.Error("expected Detail errors from the unlucky id")
	}
	if res.Stats.ErrorsFor("Main") != 0 {
		t.Error("Main should never fail")
	}
}

// TestStreamSteadyStateMemory pins the bounded-memory claim: with the client
// population fixed, running 4x longer — roughly 4x the pages and sessions —
// must not grow the heap footprint appreciably, because completed sessions
// recycle their task struct and the class scratch instead of allocating.
func TestStreamSteadyStateMemory(t *testing.T) {
	heapAfter := func(duration time.Duration) (uint64, *StreamResult) {
		cfg := testStreamConfig(1)
		cfg.Workers = 1
		cfg.Shards = 1
		cfg.Duration = duration
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		res, err := RunStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc, res
	}
	short, shortRes := heapAfter(30 * time.Second)
	long, longRes := heapAfter(120 * time.Second)
	if longRes.Sessions < 3*shortRes.Sessions {
		t.Fatalf("long run completed %d sessions vs %d short — expected ~4x", longRes.Sessions, shortRes.Sessions)
	}
	// Allow generous slack for histogram growth and GC noise: the old
	// per-session materialization would make this ratio track the 4x
	// session ratio.
	if long > short*2 {
		t.Errorf("bytes allocated grew with run length: %d for %d sessions vs %d for %d sessions",
			long, longRes.Sessions, short, shortRes.Sessions)
	}
}

// tracedStreamConfig is testStreamConfig with tracing enabled: 1-in-4
// sampling, a recorder large enough to hold every sampled trace, and a WAN
// hint on the remote classes.
func tracedStreamConfig(shards, workers int) StreamConfig {
	cfg := testStreamConfig(workers)
	cfg.Shards = shards
	cfg.Trace = &trace.Options{SampleEvery: 4, MaxTraces: 1 << 16}
	for i := range cfg.Classes {
		if !cfg.Classes[i].Local {
			cfg.Classes[i].TraceWAN = func(page string, rt time.Duration) time.Duration {
				return 5 * time.Millisecond
			}
		}
	}
	return cfg
}

func sampledIDs(res *StreamResult) []trace.TraceID {
	ids := make([]trace.TraceID, len(res.Traces))
	for i, tr := range res.Traces {
		ids[i] = tr.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestStreamTraceShardInvariantSampling pins the sampler's identity
// contract: the set of sampled trace IDs is byte-identical across shard and
// worker counts, because trace IDs derive from (class, session index, page
// ordinal) and never from lane timing or seeds.
func TestStreamTraceShardInvariantSampling(t *testing.T) {
	base, err := RunStream(tracedStreamConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if base.TraceSampled == 0 || base.TraceDropped != 0 {
		t.Fatalf("sampled=%d dropped=%d, want >0 sampled with no evictions", base.TraceSampled, base.TraceDropped)
	}
	if uint64(len(base.Traces)) != base.TraceSampled {
		t.Fatalf("recorder holds %d traces, %d sampled", len(base.Traces), base.TraceSampled)
	}
	if base.TraceSampled >= base.Pages {
		t.Fatalf("sampling recorded %d of %d pages; expected a strict subset", base.TraceSampled, base.Pages)
	}
	want := sampledIDs(base)
	for _, tc := range []struct{ shards, workers int }{{4, 1}, {4, 4}, {2, 2}} {
		res, err := RunStream(tracedStreamConfig(tc.shards, tc.workers))
		if err != nil {
			t.Fatal(err)
		}
		got := sampledIDs(res)
		if len(got) != len(want) {
			t.Fatalf("shards=%d workers=%d sampled %d traces, want %d", tc.shards, tc.workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d workers=%d trace ID set diverges at %d: %#x != %#x", tc.shards, tc.workers, i, got[i], want[i])
			}
		}
	}
}

// TestStreamTraceWorkerByteIdentity pins that, at a fixed shard count, the
// full recorded traces — spans, timings, blame — are byte-identical for any
// worker count, matching the engine's stats guarantee.
func TestStreamTraceWorkerByteIdentity(t *testing.T) {
	render := func(res *StreamResult) string {
		var out string
		for _, tr := range res.Traces {
			out += trace.Format(tr)
		}
		return out
	}
	base, err := RunStream(tracedStreamConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := render(base)
	if want == "" {
		t.Fatal("no traces recorded")
	}
	for _, workers := range []int{2, 8} {
		res, err := RunStream(tracedStreamConfig(4, workers))
		if err != nil {
			t.Fatal(err)
		}
		if got := render(res); got != want {
			t.Errorf("workers=%d trace output differs from workers=1", workers)
		}
	}
}

// TestStreamTraceBlameUsesWANHint checks the declared WAN split lands in the
// merged aggregates: remote pages carry wide-area blame, local pages none.
func TestStreamTraceBlameUsesWANHint(t *testing.T) {
	res, err := RunStream(tracedStreamConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Blame == nil {
		t.Fatal("no blame aggregator")
	}
	sawLocal, sawRemote := false, false
	for _, e := range res.Blame.Pages() {
		wan := e.Agg.ByCause[trace.CauseWAN]
		if e.Key.Local {
			sawLocal = true
			if wan != 0 {
				t.Errorf("local %s has WAN blame %v", e.Key.Page, wan)
			}
		} else {
			sawRemote = true
			if wan <= 0 {
				t.Errorf("remote %s has no WAN blame", e.Key.Page)
			}
		}
	}
	if !sawLocal || !sawRemote {
		t.Fatalf("aggregate missing a locality: local=%v remote=%v", sawLocal, sawRemote)
	}
}
