// Package workload implements the paper's client simulation methodology
// (Section 3.3): service usage patterns (Browser and Buyer/Bidder sessions),
// soft think-time pacing that keeps offered load independent of response
// times, an 80/20 browser/writer mix split across client groups, warm-up
// discard, and per-page response-time statistics split by client locality.
package workload

import (
	"fmt"
	"sort"
	"time"

	"wadeploy/internal/metrics"
)

// SeriesKey identifies one measured series: a page requested under a usage
// pattern by a client group class (local or remote).
type SeriesKey struct {
	Pattern string // "Browser", "Buyer", "Bidder", ...
	Page    string
	Local   bool
}

// Summary accumulates one series into a log-bucketed histogram: memory is
// bounded by the bucket count regardless of run length (an hour-long run
// used to retain every sample). Count, sum, min, max and mean stay exact;
// percentiles are nearest-rank over the buckets, so they can sit at most
// one bucket width (~3%) above the exact sample value.
type Summary struct {
	hist metrics.Histogram
}

func (s *Summary) add(d time.Duration) { s.hist.Observe(d) }

// Count returns the number of samples.
func (s *Summary) Count() int { return int(s.hist.Count()) }

// Mean returns the average response time.
func (s *Summary) Mean() time.Duration { return s.hist.Mean() }

// Min and Max return the observed extremes.
func (s *Summary) Min() time.Duration { return s.hist.Min() }
func (s *Summary) Max() time.Duration { return s.hist.Max() }

// Percentile returns the q-th percentile (q in [0,100]) by nearest rank:
// the rank is rounded to the closest sample instead of truncated, so e.g.
// P50 of an even-sized series picks the nearer middle sample rather than
// always the lower one.
func (s *Summary) Percentile(q float64) time.Duration {
	return s.hist.Quantile(q)
}

// Stats accumulates response-time samples across all series, discarding
// samples recorded before the warm-up boundary.
type Stats struct {
	warmEnd time.Duration
	series  map[SeriesKey]*Summary
	errors  map[string]int
}

// NewStats creates a collector that ignores samples before warmEnd.
func NewStats(warmEnd time.Duration) *Stats {
	return &Stats{
		warmEnd: warmEnd,
		series:  make(map[SeriesKey]*Summary),
		errors:  make(map[string]int),
	}
}

// Record stores one response-time sample taken at virtual time now.
func (st *Stats) Record(now time.Duration, key SeriesKey, rt time.Duration) {
	if now < st.warmEnd {
		return
	}
	s, ok := st.series[key]
	if !ok {
		s = &Summary{}
		st.series[key] = s
	}
	s.add(rt)
}

// RecordError counts a failed request (also subject to warm-up discard).
func (st *Stats) RecordError(now time.Duration, page string) {
	if now < st.warmEnd {
		return
	}
	st.errors[page]++
}

// Merge folds every series and error count of o into st. Histogram merging
// is exact in count/sum/min/max, so per-shard Stats merged in any order give
// the same totals as a single collector (the streaming engine relies on
// this for worker-count-independent results).
func (st *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	for k, s := range o.series {
		dst, ok := st.series[k]
		if !ok {
			dst = &Summary{}
			st.series[k] = dst
		}
		dst.hist.Merge(&s.hist)
	}
	for page, n := range o.errors {
		st.errors[page] += n
	}
}

// Errors returns the total number of failed requests after warm-up.
func (st *Stats) Errors() int {
	total := 0
	for _, n := range st.errors {
		total += n
	}
	return total
}

// ErrorsFor returns failures for one page.
func (st *Stats) ErrorsFor(page string) int { return st.errors[page] }

// Series returns the summary for a key, or nil.
func (st *Stats) Series(key SeriesKey) *Summary { return st.series[key] }

// Mean returns the mean for a key (0 when unobserved).
func (st *Stats) Mean(key SeriesKey) time.Duration {
	if s := st.series[key]; s != nil {
		return s.Mean()
	}
	return 0
}

// Keys returns all observed keys, sorted for deterministic output.
func (st *Stats) Keys() []SeriesKey {
	keys := make([]SeriesKey, 0, len(st.series))
	for k := range st.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pattern != b.Pattern {
			return a.Pattern < b.Pattern
		}
		if a.Page != b.Page {
			return a.Page < b.Page
		}
		return a.Local && !b.Local
	})
	return keys
}

// SessionMean returns the mean response time across every page of a pattern
// for one locality class, weighted by observed request counts — the
// quantity plotted in the paper's Figures 7 and 8.
func (st *Stats) SessionMean(pattern string, local bool) time.Duration {
	var sum time.Duration
	n := 0
	for k, s := range st.series {
		if k.Pattern == pattern && k.Local == local {
			sum += s.hist.Sum()
			n += s.Count()
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// TotalSamples returns the total number of recorded samples.
func (st *Stats) TotalSamples() int {
	n := 0
	for _, s := range st.series {
		n += s.Count()
	}
	return n
}

// String renders a compact per-series report.
func (st *Stats) String() string {
	out := ""
	for _, k := range st.Keys() {
		s := st.series[k]
		loc := "remote"
		if k.Local {
			loc = "local"
		}
		out += fmt.Sprintf("%-8s %-16s %-6s n=%-6d mean=%v\n", k.Pattern, k.Page, loc, s.Count(), s.Mean().Round(time.Millisecond))
	}
	return out
}
