package workload

import (
	"fmt"
	"math/rand"
	"time"

	"wadeploy/internal/sim"
)

// Step is one page request within a session.
type Step struct {
	Page   string
	Params map[string]string
}

// SessionGen produces the step sequence of one session. Generators are
// application-specific: the Pet Store Browser draws pages with the Table 2
// weights, the Buyer follows the fixed Table 3 sequence, and so on.
type SessionGen func(rng *rand.Rand) []Step

// Client identifies one simulated client machine process: its network node
// and a unique ID that applications use to key per-client web sessions.
type Client struct {
	Node string
	ID   string
}

// RequestFunc issues one page request on behalf of a client and returns the
// measured response time.
type RequestFunc func(p *sim.Proc, client Client, step Step) (time.Duration, error)

// Group is one client group: the machines collocated with one application
// server, split between browser and writer usage patterns.
type Group struct {
	Name       string // e.g. "local", "remote-1"
	ClientNode string
	Local      bool

	Browsers int // concurrent browser clients
	Writers  int // concurrent buyer/bidder clients

	// Delay is the soft think time: the interval between successive
	// request starts within a session. Offered load per client is
	// 1/Delay regardless of response times (Section 3.3).
	Delay time.Duration

	BrowserPattern string
	WriterPattern  string
	BrowserGen     SessionGen
	WriterGen      SessionGen

	Request RequestFunc
}

// Rate returns the group's offered load in requests per second.
func (g Group) Rate() float64 {
	if g.Delay <= 0 {
		return 0
	}
	return float64(g.Browsers+g.Writers) / g.Delay.Seconds()
}

// Observer sees every completed request — including warm-up and failures,
// which Stats discards or aggregates away. now is the completion time, rt is
// meaningful only when err is nil. Observers must be pure accumulators: they
// run inside client processes and must not touch the RNG or the clock.
type Observer func(now time.Duration, client Client, key SeriesKey, rt time.Duration, err error)

// Config drives one experiment run.
type Config struct {
	Env    *sim.Env
	Groups []Group

	// Warmup is discarded; Duration is the measured interval after it.
	Warmup   time.Duration
	Duration time.Duration

	// Observer, when non-nil, is invoked for every completed request.
	// The availability experiment uses it to score per-node success rates
	// inside a fault window, which Stats cannot express.
	Observer Observer
}

// Run simulates the configured client load and returns collected statistics.
// It spawns one process per client, runs the environment for
// Warmup+Duration of virtual time, then tears the clients down.
func Run(cfg Config) (*Stats, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("workload: nil environment")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: non-positive duration")
	}
	stats := NewStats(cfg.Warmup)
	for gi, g := range cfg.Groups {
		if g.Request == nil {
			return nil, fmt.Errorf("workload: group %q has no request function", g.Name)
		}
		if g.Delay <= 0 {
			return nil, fmt.Errorf("workload: group %q has non-positive delay", g.Name)
		}
		if g.Browsers > 0 && g.BrowserGen == nil {
			return nil, fmt.Errorf("workload: group %q has browsers but no generator", g.Name)
		}
		if g.Writers > 0 && g.WriterGen == nil {
			return nil, fmt.Errorf("workload: group %q has writers but no generator", g.Name)
		}
		for i := 0; i < g.Browsers; i++ {
			spawnClient(cfg, stats, g, gi, i, g.BrowserPattern, g.BrowserGen)
		}
		for i := 0; i < g.Writers; i++ {
			spawnClient(cfg, stats, g, gi, g.Browsers+i, g.WriterPattern, g.WriterGen)
		}
	}
	cfg.Env.Run(cfg.Warmup + cfg.Duration)
	cfg.Env.Close()
	return stats, nil
}

// spawnClient starts one client process running sessions back to back. Each
// client's first request is jittered across one Delay interval so arrivals
// spread evenly instead of thundering in at t=0.
func spawnClient(cfg Config, stats *Stats, g Group, gi, ci int, pattern string, gen SessionGen) {
	env := cfg.Env
	name := fmt.Sprintf("client/%s/%s-%d", g.Name, pattern, ci)
	// Deterministic per-client jitter derived from the env RNG at spawn
	// time (not inside the process, so spawn order fixes the seeds).
	jitter := time.Duration(env.Rand().Int63n(int64(g.Delay)))
	seed := env.Rand().Int63()
	client := Client{Node: g.ClientNode, ID: name}
	env.SpawnAt(env.Now()+jitter, name, func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(seed))
		end := cfg.Warmup + cfg.Duration
		for p.Now() < end {
			steps := gen(rng)
			for _, step := range steps {
				if p.Now() >= end {
					return
				}
				start := p.Now()
				rt, err := g.Request(p, client, step)
				if err != nil {
					stats.RecordError(p.Now(), step.Page)
				} else {
					stats.Record(p.Now(), SeriesKey{Pattern: pattern, Page: step.Page, Local: g.Local}, rt)
				}
				if cfg.Observer != nil {
					cfg.Observer(p.Now(), client, SeriesKey{Pattern: pattern, Page: step.Page, Local: g.Local}, rt, err)
				}
				// Soft think time: wait out the remainder of the
				// Delay interval; if the response took longer than
				// Delay, start the next request immediately.
				elapsed := p.Now() - start
				if wait := g.Delay - elapsed; wait > 0 {
					p.Sleep(wait)
				}
			}
		}
	})
}
