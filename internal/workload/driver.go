package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"wadeploy/internal/sim"
	"wadeploy/internal/trace"
)

// Step is one page request within a session.
type Step struct {
	Page   string
	Params map[string]string
}

// Set stores one request parameter, allocating the map on first use. With
// GrowStep's map reuse, steady-state sessions Set into already-allocated
// maps and the pair is allocation-free.
func (s *Step) Set(key, value string) {
	if s.Params == nil {
		s.Params = make(map[string]string, 4)
	}
	s.Params[key] = value
}

// GrowStep appends one step for page to steps, reusing the vacated slot —
// including its params map, which is cleared in place — when the slice has
// capacity. Generators written against it (the RefillGen form) stop
// allocating a fresh []Step and a map per page once the per-client buffer
// has grown to the longest session seen.
func GrowStep(steps []Step, page string) []Step {
	if len(steps) < cap(steps) {
		steps = steps[:len(steps)+1]
		s := &steps[len(steps)-1]
		s.Page = page
		if s.Params != nil {
			clear(s.Params)
		}
		return steps
	}
	return append(steps, Step{Page: page})
}

// SessionGen produces the step sequence of one session. Generators are
// application-specific: the Pet Store Browser draws pages with the Table 2
// weights, the Buyer follows the fixed Table 3 sequence, and so on.
type SessionGen func(rng *rand.Rand) []Step

// RefillGen is the pooled form of SessionGen: it writes the session into
// steps (passed with length 0 and whatever capacity previous sessions grew)
// and returns the filled slice. A RefillGen must draw exactly the same RNG
// sequence as its SessionGen counterpart so the two are interchangeable
// without disturbing byte-identical outputs; the paper-table goldens pin
// this. Params maps in reused slots arrive cleared but allocated — requests
// consume them synchronously, so handing the same map to every session is
// safe.
type RefillGen func(rng *rand.Rand, steps []Step) []Step

// Client identifies one simulated client machine process: its network node
// and a unique ID that applications use to key per-client web sessions.
type Client struct {
	Node string
	ID   string
}

// RequestFunc issues one page request on behalf of a client and returns the
// measured response time.
type RequestFunc func(p *sim.Proc, client Client, step Step) (time.Duration, error)

// Group is one client group: the machines collocated with one application
// server, split between browser and writer usage patterns.
type Group struct {
	Name       string // e.g. "local", "remote-1"
	ClientNode string
	Local      bool

	Browsers int // concurrent browser clients
	Writers  int // concurrent buyer/bidder clients

	// Delay is the soft think time: the interval between successive
	// request starts within a session. Offered load per client is
	// 1/Delay regardless of response times (Section 3.3).
	Delay time.Duration

	BrowserPattern string
	WriterPattern  string
	BrowserGen     SessionGen
	WriterGen      SessionGen

	// BrowserRefill/WriterRefill, when set, are used instead of the Gen
	// counterparts on the request hot path, reusing one step buffer per
	// client. The Gen forms remain required wherever sessions are sampled
	// outside the driver (planner visit estimation).
	BrowserRefill RefillGen
	WriterRefill  RefillGen

	Request RequestFunc
}

// Rate returns the group's offered load in requests per second.
func (g Group) Rate() float64 {
	if g.Delay <= 0 {
		return 0
	}
	return float64(g.Browsers+g.Writers) / g.Delay.Seconds()
}

// Observer sees every completed request — including warm-up and failures,
// which Stats discards or aggregates away. now is the completion time, rt is
// meaningful only when err is nil. Observers must be pure accumulators: they
// run inside client processes and must not touch the RNG or the clock.
type Observer func(now time.Duration, client Client, key SeriesKey, rt time.Duration, err error)

// Config drives one experiment run.
type Config struct {
	Env    *sim.Env
	Groups []Group

	// Warmup is discarded; Duration is the measured interval after it.
	Warmup   time.Duration
	Duration time.Duration

	// Observer, when non-nil, is invoked for every completed request.
	// The availability experiment uses it to score per-node success rates
	// inside a fault window, which Stats cannot express.
	Observer Observer
}

// Run simulates the configured client load and returns collected statistics.
// It spawns one process per client, runs the environment for
// Warmup+Duration of virtual time, then tears the clients down.
func Run(cfg Config) (*Stats, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("workload: nil environment")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: non-positive duration")
	}
	stats := NewStats(cfg.Warmup)
	for _, g := range cfg.Groups {
		if g.Request == nil {
			return nil, fmt.Errorf("workload: group %q has no request function", g.Name)
		}
		if g.Delay <= 0 {
			return nil, fmt.Errorf("workload: group %q has non-positive delay", g.Name)
		}
		if g.Browsers > 0 && g.BrowserGen == nil && g.BrowserRefill == nil {
			return nil, fmt.Errorf("workload: group %q has browsers but no generator", g.Name)
		}
		if g.Writers > 0 && g.WriterGen == nil && g.WriterRefill == nil {
			return nil, fmt.Errorf("workload: group %q has writers but no generator", g.Name)
		}
		ids := makeIdentities(cfg.Env, g)
		for i := 0; i < g.Browsers; i++ {
			spawnClient(cfg, stats, g, ids[i], g.BrowserPattern, g.BrowserGen, g.BrowserRefill)
		}
		for i := 0; i < g.Writers; i++ {
			spawnClient(cfg, stats, g, ids[g.Browsers+i], g.WriterPattern, g.WriterGen, g.WriterRefill)
		}
	}
	cfg.Env.Run(cfg.Warmup + cfg.Duration)
	cfg.Env.Close()
	return stats, nil
}

// clientIdentity is one client's precomputed name, start jitter and private
// RNG seed.
type clientIdentity struct {
	name   string
	jitter time.Duration
	seed   int64
}

// makeIdentities computes every client identity of a group up front, in the
// exact order clients spawn: browsers then writers, each drawing its jitter
// and then its seed from the env RNG (the draw order the paper goldens pin).
// Names are built with one append-formatted allocation per client instead of
// spawnClient's former fmt.Sprintf, and the per-pattern prefix is shared.
func makeIdentities(env *sim.Env, g Group) []clientIdentity {
	ids := make([]clientIdentity, g.Browsers+g.Writers)
	buf := make([]byte, 0, 64)
	prefix := func(pattern string) []byte {
		buf = buf[:0]
		buf = append(buf, "client/"...)
		buf = append(buf, g.Name...)
		buf = append(buf, '/')
		buf = append(buf, pattern...)
		buf = append(buf, '-')
		return buf
	}
	for i := range ids {
		pattern := g.BrowserPattern
		if i >= g.Browsers {
			pattern = g.WriterPattern
		}
		ids[i] = clientIdentity{
			name:   string(strconv.AppendInt(prefix(pattern), int64(i), 10)),
			jitter: time.Duration(env.Rand().Int63n(int64(g.Delay))),
			seed:   env.Rand().Int63(),
		}
	}
	return ids
}

// spawnClient starts one client process running sessions back to back. Each
// client's first request is jittered across one Delay interval so arrivals
// spread evenly instead of thundering in at t=0.
//
// When a tracer is installed on the environment, every page request gets a
// trace ID derived from the client's stable name and its page ordinal — pure
// logical identity, so the sampler picks the same requests no matter how the
// surrounding experiment is parallelized.
func spawnClient(cfg Config, stats *Stats, g Group, id clientIdentity, pattern string, gen SessionGen, refill RefillGen) {
	env := cfg.Env
	client := Client{Node: g.ClientNode, ID: id.name}
	tracer := trace.FromEnv(env)
	env.SpawnAt(env.Now()+id.jitter, id.name, func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(id.seed))
		end := cfg.Warmup + cfg.Duration
		var steps []Step
		var traceKey, traceSeq uint64
		if tracer != nil {
			traceKey = trace.ClientKey(id.name)
		}
		for p.Now() < end {
			if refill != nil {
				steps = refill(rng, steps[:0])
			} else {
				steps = gen(rng)
			}
			for _, step := range steps {
				if p.Now() >= end {
					return
				}
				start := p.Now()
				var endTrace func()
				if tracer != nil {
					endTrace = tracer.StartPage(p, trace.PageTraceID(traceKey, traceSeq), pattern, step.Page, g.ClientNode, g.Local)
					traceSeq++
				}
				rt, err := g.Request(p, client, step)
				if endTrace != nil {
					endTrace()
				}
				if err != nil {
					stats.RecordError(p.Now(), step.Page)
				} else {
					stats.Record(p.Now(), SeriesKey{Pattern: pattern, Page: step.Page, Local: g.Local}, rt)
				}
				if cfg.Observer != nil {
					cfg.Observer(p.Now(), client, SeriesKey{Pattern: pattern, Page: step.Page, Local: g.Local}, rt, err)
				}
				// Soft think time: wait out the remainder of the
				// Delay interval; if the response took longer than
				// Delay, start the next request immediately.
				elapsed := p.Now() - start
				if wait := g.Delay - elapsed; wait > 0 {
					p.Sleep(wait)
				}
			}
		}
	})
}
