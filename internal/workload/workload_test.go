package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"wadeploy/internal/metrics"
	"wadeploy/internal/sim"
)

func TestSummaryStatistics(t *testing.T) {
	s := &Summary{}
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		s.add(d * time.Millisecond)
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 30*time.Millisecond {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 10*time.Millisecond || s.Max() != 50*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	// P50 resolves to the bucket holding the 30ms sample.
	if lo, hi := metrics.BucketRange(30 * time.Millisecond); s.Percentile(50) < lo || s.Percentile(50) > hi {
		t.Fatalf("p50 = %v, want within bucket [%v, %v]", s.Percentile(50), lo, hi)
	}
	if p := s.Percentile(100); p != 50*time.Millisecond {
		t.Fatalf("p100 = %v", p)
	}
	if p := s.Percentile(0); p != 10*time.Millisecond {
		t.Fatalf("p0 = %v", p)
	}
}

// TestPercentileNearestRank pins the nearest-rank rule. The samples are tiny
// durations (< 32 ns), where the histogram's buckets are exact, so the rule
// is observable without bucket rounding: the rank round(q/100·(n−1)) is
// rounded to the closest sample, where the old implementation truncated.
func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		name    string
		samples []time.Duration
		q       float64
		want    time.Duration
	}{
		{"odd-median", []time.Duration{10, 20, 30}, 50, 20},
		{"even-median-rounds-up", []time.Duration{10, 20, 30, 31}, 50, 30}, // trunc would give 20
		{"p25-of-five", []time.Duration{10, 12, 14, 16, 18}, 25, 12},
		{"p75-of-five", []time.Duration{10, 12, 14, 16, 18}, 75, 16},
		{"p90-rounds-to-last", []time.Duration{10, 20}, 90, 20},
		{"p10-rounds-to-first", []time.Duration{10, 20}, 10, 10},
		{"p40-of-four-rounds", []time.Duration{10, 20, 30, 31}, 40, 20}, // rank round(1.2)=1
		{"single-sample", []time.Duration{17}, 50, 17},
		{"p0-is-min", []time.Duration{5, 9, 13}, 0, 5},
		{"p100-is-max", []time.Duration{5, 9, 13}, 100, 13},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Summary{}
			for _, d := range tc.samples {
				s.add(d)
			}
			if got := s.Percentile(tc.q); got != tc.want {
				t.Fatalf("P%v of %v = %v, want %v", tc.q, tc.samples, got, tc.want)
			}
		})
	}
}

// TestSummaryPercentileDrift bounds the cost of the bounded-memory rewrite:
// against a retained-samples oracle, the histogram-backed P95 may sit at
// most one bucket width above the exact nearest-rank value.
func TestSummaryPercentileDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := &Summary{}
	samples := make([]time.Duration, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Long-tailed response times: 1ms to ~2s.
		d := time.Duration(1e6 * math.Exp(rng.Float64()*7.6))
		s.add(d)
		samples = append(samples, d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{50, 90, 95, 99} {
		rank := int(math.Round(q / 100 * float64(len(samples)-1)))
		exact := samples[rank]
		got := s.Percentile(q)
		lo, hi := metrics.BucketRange(exact)
		if got < lo || got > hi {
			t.Errorf("P%v = %v, exact %v, want within that sample's bucket [%v, %v]", q, got, exact, lo, hi)
		}
	}
}

func TestEmptySummary(t *testing.T) {
	s := &Summary{}
	if s.Mean() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestStatsWarmupDiscard(t *testing.T) {
	st := NewStats(time.Minute)
	key := SeriesKey{Pattern: "Browser", Page: "Main", Local: true}
	st.Record(30*time.Second, key, 100*time.Millisecond) // during warm-up
	st.Record(90*time.Second, key, 200*time.Millisecond)
	if st.Mean(key) != 200*time.Millisecond {
		t.Fatalf("mean = %v; warm-up sample leaked in", st.Mean(key))
	}
	if st.TotalSamples() != 1 {
		t.Fatalf("samples = %d", st.TotalSamples())
	}
	st.RecordError(30*time.Second, "Main")
	st.RecordError(90*time.Second, "Main")
	if st.Errors() != 1 || st.ErrorsFor("Main") != 1 {
		t.Fatalf("errors = %d", st.Errors())
	}
}

func TestSessionMeanWeightsByCount(t *testing.T) {
	st := NewStats(0)
	// 3 fast Main requests, 1 slow Item request.
	for i := 0; i < 3; i++ {
		st.Record(time.Second, SeriesKey{Pattern: "Browser", Page: "Main", Local: false}, 100*time.Millisecond)
	}
	st.Record(time.Second, SeriesKey{Pattern: "Browser", Page: "Item", Local: false}, 500*time.Millisecond)
	// Weighted: (3*100 + 500) / 4 = 200ms.
	if m := st.SessionMean("Browser", false); m != 200*time.Millisecond {
		t.Fatalf("session mean = %v, want 200ms", m)
	}
	// Other locality class is independent.
	if m := st.SessionMean("Browser", true); m != 0 {
		t.Fatalf("local mean = %v, want 0", m)
	}
}

func TestStatsKeysDeterministic(t *testing.T) {
	st := NewStats(0)
	keys := []SeriesKey{
		{Pattern: "Buyer", Page: "Main", Local: false},
		{Pattern: "Browser", Page: "Item", Local: true},
		{Pattern: "Browser", Page: "Item", Local: false},
		{Pattern: "Browser", Page: "Category", Local: true},
	}
	for _, k := range keys {
		st.Record(time.Second, k, time.Millisecond)
	}
	got := st.Keys()
	if len(got) != 4 {
		t.Fatalf("keys = %d", len(got))
	}
	want := []SeriesKey{
		{Pattern: "Browser", Page: "Category", Local: true},
		{Pattern: "Browser", Page: "Item", Local: true},
		{Pattern: "Browser", Page: "Item", Local: false},
		{Pattern: "Buyer", Page: "Main", Local: false},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if st.String() == "" {
		t.Fatal("String() empty")
	}
}

// fixedRequest returns a RequestFunc with a constant simulated service time.
func fixedRequest(rt time.Duration) RequestFunc {
	return func(p *sim.Proc, client Client, step Step) (time.Duration, error) {
		p.Sleep(rt)
		return rt, nil
	}
}

func singlePageGen(page string, n int) SessionGen {
	return func(rng *rand.Rand) []Step {
		steps := make([]Step, n)
		for i := range steps {
			steps[i] = Step{Page: page}
		}
		return steps
	}
}

func TestRunOfferedLoadIndependentOfResponseTime(t *testing.T) {
	// Two runs with very different response times must produce nearly the
	// same number of requests thanks to soft think times.
	count := func(rt time.Duration) int {
		env := sim.NewEnv(3)
		stats, err := Run(Config{
			Env: env,
			Groups: []Group{{
				Name: "g", ClientNode: "c", Local: true,
				Browsers: 10, Delay: time.Second,
				BrowserPattern: "Browser",
				BrowserGen:     singlePageGen("Main", 5),
				Request:        fixedRequest(rt),
			}},
			Warmup:   0,
			Duration: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.TotalSamples()
	}
	fast := count(10 * time.Millisecond)
	slow := count(700 * time.Millisecond)
	if fast == 0 {
		t.Fatal("no samples")
	}
	diff := float64(fast-slow) / float64(fast)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.1 {
		t.Fatalf("offered load varied with response time: fast=%d slow=%d", fast, slow)
	}
}

func TestRunSplitsPatterns(t *testing.T) {
	env := sim.NewEnv(3)
	stats, err := Run(Config{
		Env: env,
		Groups: []Group{{
			Name: "g", ClientNode: "c", Local: false,
			Browsers: 4, Writers: 1, Delay: time.Second,
			BrowserPattern: "Browser", WriterPattern: "Bidder",
			BrowserGen: singlePageGen("Item", 3),
			WriterGen:  singlePageGen("StoreBid", 3),
			Request:    fixedRequest(5 * time.Millisecond),
		}},
		Warmup:   2 * time.Second,
		Duration: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := stats.Series(SeriesKey{Pattern: "Browser", Page: "Item", Local: false})
	w := stats.Series(SeriesKey{Pattern: "Bidder", Page: "StoreBid", Local: false})
	if b == nil || w == nil {
		t.Fatalf("missing series: %v", stats.Keys())
	}
	// 4 browsers vs 1 writer at the same delay: roughly 4x the samples.
	ratio := float64(b.Count()) / float64(w.Count())
	if ratio < 3 || ratio > 5 {
		t.Fatalf("browser/writer sample ratio = %v, want ~4", ratio)
	}
}

func TestRunGroupRate(t *testing.T) {
	g := Group{Browsers: 8, Writers: 2, Delay: time.Second}
	if r := g.Rate(); r != 10 {
		t.Fatalf("rate = %v, want 10 req/s", r)
	}
	if (Group{}).Rate() != 0 {
		t.Fatal("zero-delay rate should be 0")
	}
}

func TestRunValidation(t *testing.T) {
	env := sim.NewEnv(1)
	if _, err := Run(Config{Env: nil, Duration: time.Second}); err == nil {
		t.Fatal("nil env accepted")
	}
	if _, err := Run(Config{Env: env, Duration: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
	bad := []Group{
		{Name: "no-request", Browsers: 1, Delay: time.Second, BrowserGen: singlePageGen("p", 1)},
		{Name: "no-delay", Browsers: 1, Request: fixedRequest(0), BrowserGen: singlePageGen("p", 1)},
		{Name: "no-gen", Browsers: 1, Delay: time.Second, Request: fixedRequest(0)},
		{Name: "no-writer-gen", Writers: 1, Delay: time.Second, Request: fixedRequest(0)},
	}
	for _, g := range bad {
		if _, err := Run(Config{Env: sim.NewEnv(1), Groups: []Group{g}, Duration: time.Second}); err == nil {
			t.Fatalf("group %q accepted", g.Name)
		}
	}
}

func TestRunDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		env := sim.NewEnv(42)
		stats, err := Run(Config{
			Env: env,
			Groups: []Group{{
				Name: "g", ClientNode: "c", Local: true,
				Browsers: 3, Delay: 500 * time.Millisecond,
				BrowserPattern: "Browser",
				BrowserGen: func(rng *rand.Rand) []Step {
					n := rng.Intn(4) + 1
					steps := make([]Step, n)
					for i := range steps {
						steps[i] = Step{Page: "P"}
					}
					return steps
				},
				Request: fixedRequest(7 * time.Millisecond),
			}},
			Duration: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic stats:\n%s\nvs\n%s", a, b)
	}
}

// Property: mean lies within [min, max] and percentiles are monotone.
func TestPropertySummaryInvariants(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		s := &Summary{}
		for _, r := range raw {
			s.add(time.Duration(r%1e6) * time.Microsecond)
		}
		m := s.Mean()
		if m < s.Min() || m > s.Max() {
			return false
		}
		last := time.Duration(-1)
		for _, q := range []float64{0, 25, 50, 75, 90, 99, 100} {
			p := s.Percentile(q)
			if p < last {
				return false
			}
			last = p
		}
		return s.Percentile(0) == s.Min() && s.Percentile(100) == s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
