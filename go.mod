module wadeploy

go 1.22
