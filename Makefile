# wadeploy — build, test and reproduce the paper's evaluation.

GO ?= go

# Perf record written by `make bench`; bump the suffix per PR so the
# trajectory (BENCH_PR1.json, BENCH_PR2.json, ...) stays comparable.
BENCH_OUT ?= BENCH_PR10.json

# Baseline record the bench-check gate compares against.
BENCH_BASELINE ?= BENCH_PR9.json
# Maximum fractional regression per promoted metric (0.3 = 30%; CI runners
# are noisy, so the gate only catches real cliffs).
BENCH_TOLERANCE ?= 0.3

.PHONY: all verify build vet test race bench bench-smoke bench-check determinism profile repro repro-quick examples clean

all: verify

# Tier-1 verification: compile, static checks, full test suite.
verify: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over every package: the parallel experiment scheduler
# overlaps entire simulation runs, so this must stay clean.
race:
	$(GO) test -race ./...

# Run the engine microbenchmarks plus one pass of the paper benchmarks, and
# record them (with sequential-vs-parallel `wadeploy all` wall-clock) as
# machine-readable JSON for cross-PR comparison.
bench:
	( $(GO) test -bench=BenchmarkEngine -benchmem -run '^$$' ./internal/sim && \
	  $(GO) test -bench=BenchmarkSqldb -benchmem -run '^$$' ./internal/sqldb && \
	  $(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' . && \
	  $(GO) test -bench='SubstrateSimEventThroughput|WorkloadScaleSessions|TraceOverhead' -benchmem -run '^$$' . ) \
	| $(GO) run ./cmd/benchjson -time-wadeploy -o $(BENCH_OUT)

# One-iteration pass over every benchmark family: catches benchmarks that
# no longer compile or crash, without paying measurement time. CI runs this.
# The root `-bench=.` pass includes the engine-v2 throughput benchmarks
# (SubstrateSimEventThroughput, WorkloadScaleSessions).
bench-smoke:
	$(GO) test -bench=BenchmarkSqldb -benchtime=1x -run '^$$' ./internal/sqldb
	$(GO) test -bench=BenchmarkEngine -benchtime=1x -run '^$$' ./internal/sim
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./internal/trace
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Bench-regression gate: run the measured benchmarks into a fresh record and
# compare its promoted metrics against the checked-in baseline. Throughput
# must not drop and WAN cost must not rise beyond BENCH_TOLERANCE.
bench-check:
	$(MAKE) bench BENCH_OUT=bench-check-new.json
	$(GO) run ./cmd/benchjson -check $(BENCH_BASELINE) bench-check-new.json -tolerance $(BENCH_TOLERANCE)

# Determinism gate: every deterministic surface byte-identical between the
# sequential and the parallel scheduler (see scripts/determinism.sh).
determinism:
	sh scripts/determinism.sh

# CPU and heap profiles over the Figure-7 session benchmark (the workload
# most representative of paper runs). Inspect with `go tool pprof
# wadeploy.test cpu.out` / `go tool pprof wadeploy.test mem.out`.
profile:
	$(GO) test -bench=BenchmarkFigure7PetStoreSessions -benchtime=1x -run '^$$' \
		-cpuprofile=cpu.out -memprofile=mem.out -o wadeploy.test .

# Full paper-length reproduction: Tables 6-7 and Figures 7-8 at one virtual
# hour per configuration (about a minute of wall-clock time), plus the
# DB-replication extension row and diagnostics.
repro:
	$(GO) run ./cmd/wadeploy -diag -ext -p95 all

repro-quick:
	$(GO) run ./cmd/wadeploy -quick all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/custom
	$(GO) run ./examples/petstore
	$(GO) run ./examples/rubis
	$(GO) run ./examples/failover
	$(GO) run ./examples/autoscale

clean:
	$(GO) clean ./...
