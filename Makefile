# wadeploy — build, test and reproduce the paper's evaluation.

GO ?= go

.PHONY: all build vet test bench repro repro-quick examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

# Full paper-length reproduction: Tables 6-7 and Figures 7-8 at one virtual
# hour per configuration (about a minute of wall-clock time), plus the
# DB-replication extension row and diagnostics.
repro:
	$(GO) run ./cmd/wadeploy -diag -ext -p95 all

repro-quick:
	$(GO) run ./cmd/wadeploy -quick all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/custom
	$(GO) run ./examples/failover
	$(GO) run ./examples/autoscale

clean:
	$(GO) clean ./...
